"""Online inference façade: many sessions, one model, micro-batched encoding.

:class:`PromptServer` turns the offline episode runner into a serving loop:

* ``open_session`` — bind a session id to an episode definition; the
  candidate pool is encoded **once** and reused for every query of the
  session (the amortization the offline runner only got within one call).
* ``submit`` — enqueue a single query for a session; returns a ticket.
* ``step`` / ``drain`` — release micro-batches: all pending queries, across
  sessions, are encoded in **one** GNN pass (the per-query cost driver),
  then each query runs the Selector → Augmenter → task-graph step against
  its own session's state, in strict arrival order.

Because prediction stays per-query (only the encoder is batched) and
subgraph sampling is deterministic per datapoint, serving with any
``max_batch_size`` produces bit-identical predictions to per-query serving
— micro-batching is purely a throughput optimization.

The drain loop itself stays synchronous and deterministic (that is what
keeps the batching policy testable), but the encoding hot path can scale
*horizontally*: constructed with ``num_shards``/``num_workers``, the server
routes every micro-batch through a :class:`ShardRouter` — the graph is
split into shards (:mod:`repro.shard`), each batch is fanned out per shard
to a process worker pool, and the rows are merged back in submission
order.  Sharded sampling is bit-identical to the monolithic engines and
encoding is batch-composition-invariant, so sharded/parallel serving
returns exactly the same predictions — it is a pure throughput lever.
``clock`` is injectable for TTL tests.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..core.config import GraphPrompterConfig
from ..core.episodes import Episode
from ..core.inference import GraphPrompterPipeline
from ..core.model import GraphPrompterModel
from ..core.prompt_augmenter import PromptAugmenter
from ..datasets.base import Dataset
from ..graph.datapoints import Datapoint
from ..graph.delta import AppliedUpdate, GraphUpdate
from ..obs.metrics import (
    BATCH_SIZE_BUCKETS,
    MetricsRegistry,
    get_registry,
    scoped_registry,
)
from ..obs.tracing import batch_scope, span
from ..persist import (
    PersistentStore,
    SessionManifest,
    episode_from_jsonable,
    episode_to_jsonable,
)
from ..shard import ShardCounters
from .quantize import quantize_pool
from .router import ShardRouter
from .scheduler import MicroBatchScheduler, PendingRequest
from .session import SessionState, SessionStore

__all__ = ["ServeResult", "ServerStats", "PromptServer"]


@dataclass(frozen=True)
class ServeResult:
    """Answer to one submitted query."""

    request_id: int
    session_id: str
    prediction: int
    confidence: float
    batch_size: int
    wait_s: float
    service_s: float
    error: str | None = None

    @property
    def latency_s(self) -> float:
        """Queue wait plus micro-batch service time."""
        return self.wait_s + self.service_s

    @property
    def ok(self) -> bool:
        """Whether the query completed without error."""
        return self.error is None


@dataclass(frozen=True)
class ServerStats:
    """Snapshot of server-level counters across all sessions.

    ``shards`` holds one :class:`~repro.shard.ShardCounters` per shard
    (``requests`` routed, ``halo_fetches`` across shard boundaries,
    ``worker_busy_s`` of task execution) when the server runs sharded;
    empty on the monolithic path.
    """

    queries: int = 0
    batches: int = 0
    encoded_subgraphs: int = 0
    sessions_opened: int = 0
    sessions_evicted: int = 0
    sessions_expired: int = 0
    shards: tuple[ShardCounters, ...] = ()
    #: Per-tenant QoS ledgers (admitted/shed counts, QPS, queue-wait
    #: percentiles, deadline misses, attributed shard work).  Filled by
    #: :class:`~repro.serving.ServingGateway`; empty when the server is
    #: driven directly.
    tenants: tuple = ()
    #: Live-update ledger: current graph epoch, update batches applied,
    #: sessions marked stale by an update, and cache entries the live
    #: sessions' Augmenters dropped as graph-stale (capacity evictions
    #: are counted separately, per session).
    graph_version: int = 0
    graph_updates: int = 0
    sessions_invalidated: int = 0
    stale_evictions: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average encoded subgraphs per batch."""
        return self.encoded_subgraphs / self.batches if self.batches else 0.0

    @property
    def halo_fetches(self) -> int:
        """Total cross-shard row fetches (0 when unsharded)."""
        return sum(c.halo_fetches for c in self.shards)


class PromptServer:
    """Multi-session online GraphPrompter inference over one dataset."""

    def __init__(self, model: GraphPrompterModel, dataset: Dataset,
                 max_batch_size: int = 16, max_wait_s: float = 0.0,
                 session_capacity: int = 64,
                 session_ttl_s: float | None = None,
                 result_buffer_size: int = 4096,
                 rng: np.random.Generator | int | None = None,
                 clock=time.monotonic,
                 num_shards: int | None = None,
                 num_workers: int | None = None,
                 shard_strategy: str | None = None,
                 worker_backend: str | None = None,
                 registry: MetricsRegistry | None = None,
                 persist: PersistentStore | None = None,
                 shard_owner: np.ndarray | None = None):
        if result_buffer_size < 1:
            raise ValueError("result_buffer_size must be at least 1")
        model.eval()
        self.model = model
        self.dataset = dataset
        self.config: GraphPrompterConfig = model.config
        self.rng = np.random.default_rng(rng)
        self.clock = clock
        # Observability home: an explicit registry wins, else the ambient
        # one (process-global unless a scope is active), else — with
        # metrics disabled — a dead registry whose instruments drop every
        # record after one branch.
        if registry is not None:
            self.obs = registry
        elif self.config.obs_metrics_enabled:
            self.obs = get_registry()
        else:
            self.obs = MetricsRegistry(enabled=False)
        self.pipeline = GraphPrompterPipeline(model, dataset, rng=self.rng)
        # Serving requires order-independent subgraphs: the same query must
        # encode identically whether it rides a batch of 1 or 16.
        self.pipeline.generator.deterministic = True
        # Horizontal scale: unspecified knobs fall back to the config;
        # (1 shard, 1 worker) keeps the monolithic in-process hot path.
        num_shards = (self.config.num_shards if num_shards is None
                      else num_shards)
        num_workers = (self.config.num_workers if num_workers is None
                       else num_workers)
        shard_strategy = shard_strategy or self.config.shard_strategy
        worker_backend = worker_backend or self.config.worker_backend
        self.router: ShardRouter | None = None
        if num_shards > 1 or num_workers > 1:
            self.router = ShardRouter(
                model, dataset.graph, num_shards=num_shards,
                num_workers=num_workers, strategy=shard_strategy,
                backend=worker_backend, owner=shard_owner)
            # Candidate pools and query batches both flow through
            # encode_points — route them all through the shards.
            self.pipeline.point_encoder = self.router.encode_points
        self.scheduler = MicroBatchScheduler(max_batch_size=max_batch_size,
                                             max_wait_s=max_wait_s,
                                             clock=clock)
        self.sessions = SessionStore(capacity=session_capacity,
                                     ttl_seconds=session_ttl_s, clock=clock)
        # Live-update path: dependency tracking + epoch invalidation are
        # paid only when the config opts in.
        self._mutable = self.config.mutable_graph
        if self._mutable:
            dataset.graph.compact_threshold = self.config.compact_threshold
        # Durability: with a PersistentStore attached, the baseline
        # snapshot is written once (no-op on a warm start over an existing
        # store), every accepted update is WAL-logged *before* it is
        # applied, and each open session keeps a manifest on disk — the
        # three pieces :meth:`restore` warm-starts from.
        self.persist = persist
        self._session_open_index = 0
        if persist is not None:
            persist.initialize(dataset.graph, owner=self._owner_map())
            self._session_open_index = persist.sessions.next_open_index()
        #: WAL records re-applied by the most recent :meth:`restore`.
        self.last_recovery_replayed = 0
        self._graph_updates = 0
        self._sessions_invalidated = 0
        self._queries = 0
        self._batches = 0
        self._encoded_subgraphs = 0
        self._sessions_opened = 0
        # Completed results kept for ticket lookup; bounded so a
        # long-running server does not grow with total queries served
        # (oldest results fall out first — callers collect promptly).
        self.result_buffer_size = result_buffer_size
        self._results: "OrderedDict[int, ServeResult]" = OrderedDict()

    @property
    def stats(self) -> ServerStats:
        """Current counter snapshot (session counters from the store)."""
        return ServerStats(
            queries=self._queries, batches=self._batches,
            encoded_subgraphs=self._encoded_subgraphs,
            sessions_opened=self._sessions_opened,
            sessions_evicted=self.sessions.evicted_total,
            sessions_expired=self.sessions.expired_total,
            shards=self.router.stats() if self.router is not None else (),
            graph_version=self.dataset.graph.version,
            graph_updates=self._graph_updates,
            sessions_invalidated=self._sessions_invalidated,
            stale_evictions=sum(
                state.augmenter.stats().stale_evictions
                for state in self.sessions.states()))

    def _owner_map(self) -> np.ndarray | None:
        """Current shard-owner map (``None`` on the monolithic path)."""
        return self.router.store.owner if self.router is not None else None

    def close(self) -> None:
        """Release the worker pool (no-op for the monolithic path)."""
        if self.router is not None:
            self.router.close()

    def __enter__(self) -> "PromptServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def open_session(self, session_id: str, episode: Episode,
                     shots: int = 3, tenant_id: str | None = None,
                     priority=None,
                     _open_index: int | None = None) -> SessionState:
        """Bind ``session_id`` to an episode; encodes its pool once.

        ``tenant_id``/``priority`` are recorded in the session's durable
        manifest (when a :class:`~repro.persist.PersistentStore` is
        attached) so a restart — or a replica-set failover — can re-open
        the session for its owner.  ``_open_index`` is the restore path's
        override: re-opened sessions keep their original open order (the
        per-open RNG draw sequence depends on it).
        """
        pool, pool_labels = self.pipeline.select_candidate_pool(episode,
                                                                shots)
        with scoped_registry(self.obs):
            candidate_emb, candidate_importance = (
                self.pipeline.encode_points(pool))
        augmenter = PromptAugmenter(
            self.config, rng=np.random.default_rng(self.rng.integers(2**32)))
        state = SessionState(
            session_id=session_id, num_ways=episode.num_ways, shots=shots,
            candidate_emb=self._store_pool(candidate_emb),
            candidate_importance=candidate_importance,
            pool_labels=pool_labels, augmenter=augmenter,
            episode=episode,
            graph_version=self.dataset.graph.version,
            dependent_nodes=self._dependencies(pool))
        evicted = self.sessions.put(state)
        self._sessions_opened += 1
        if self.persist is not None:
            for victim in evicted:
                self.persist.sessions.remove(victim)
            index = (self._session_open_index if _open_index is None
                     else _open_index)
            self._session_open_index = max(self._session_open_index,
                                           index) + 1
            self.persist.sessions.write(SessionManifest(
                session_id=session_id, open_index=index, shots=shots,
                graph_version=self.dataset.graph.version,
                episode=episode_to_jsonable(episode),
                tenant_id=tenant_id,
                priority=None if priority is None else int(priority)))
        return state

    def close_session(self, session_id: str) -> SessionState | None:
        """Drop a session's cache and ledger; returns the final state."""
        state = self.sessions.close(session_id)
        if self.persist is not None and state is not None:
            self.persist.sessions.remove(session_id)
        return state

    def _sweep_sessions(self) -> None:
        """TTL sweep that also retires expired sessions' manifests."""
        expired = self.sessions.sweep()
        if self.persist is not None:
            for session_id in expired:
                self.persist.sessions.remove(session_id)

    # ------------------------------------------------------------------
    # Live graph updates (cache-epoch invalidation)
    # ------------------------------------------------------------------
    def _dependencies(self, datapoints: list) -> set:
        """Every node the datapoints' sampled subgraphs visit.

        Sampling is deterministic per datapoint, so re-running the (cheap)
        sampler reproduces exactly the node sets the encoder consumed —
        and a mutation that touches none of them cannot change any of the
        session's subgraphs, which is what makes dependency-scoped
        invalidation sound.  Empty (free) when the graph is immutable.

        This does sample each datapoint a second time (the first is
        inside the encode pass) rather than threading node sets out of
        the encoder: the sharded path samples inside worker processes,
        so host-side reuse would need subgraphs shipped back across the
        pool — a far bigger cost than re-running numpy gathers next to
        a GNN forward.
        """
        if not self._mutable:
            return set()
        generator = self.pipeline.generator
        dependencies: set[int] = set()
        for datapoint in datapoints:
            dependencies.update(
                generator.subgraph_for(datapoint).nodes.tolist())
        return dependencies

    def update_graph(self, update: GraphUpdate,
                     log: bool = True) -> AppliedUpdate:
        """Apply one live mutation batch and invalidate what it touched.

        The graph (and, when sharded, the owner shards and worker pool)
        absorbs the update in place; sessions whose sampled subgraphs
        intersect the touched nodes are marked stale and refreshed —
        candidate pool re-encoded, Augmenter cache purged — before their
        next prediction.  Sessions outside the touched region keep their
        caches: their subgraphs provably cannot have changed.

        With a :class:`~repro.persist.PersistentStore` attached, the
        update is WAL-logged (and fsynced) *before* the in-memory apply —
        a crash between the two replays the record on restart, a crash
        mid-append tears the log's tail, which replay drops: either way
        durability and memory agree.  ``log=False`` is the replay path
        itself (re-applying an already-logged record must not re-log it).
        """
        if not self._mutable:
            raise RuntimeError(
                "live graph updates require mutable_graph=True in the "
                "model config")
        if self.persist is not None and log:
            self.persist.log_update(update,
                                    base_version=self.dataset.graph.version)
        applied = self.dataset.graph.apply_updates(update)
        if self.router is not None:
            self.router.apply_updates(applied)
        touched = set(applied.touched_nodes.tolist())
        for state in self.sessions.states():
            if not state.stale and state.dependent_nodes & touched:
                state.stale = True
                self._sessions_invalidated += 1
        self._graph_updates += 1
        return applied

    def save_snapshot(self) -> int:
        """Checkpoint the current graph (and owner map) into the store.

        Compacts the WAL behind the snapshot.  Call between update
        batches (the drain loop is synchronous, so any point outside
        :meth:`update_graph` is quiescent).  Returns the snapshot's graph
        version.
        """
        if self.persist is None:
            raise RuntimeError(
                "save_snapshot requires a PersistentStore (pass persist= "
                "to the server)")
        return self.persist.save_snapshot(self.dataset.graph,
                                          owner=self._owner_map())

    def refresh_sessions(self) -> int:
        """Eagerly re-anchor every stale session; returns the count.

        Staleness is normally resolved lazily (on a session's next
        prediction); this forces the re-anchor now — e.g. to bound
        first-query latency after a large update, or to align a reference
        run with a freshly-recovered server in differential tests.
        """
        refreshed = 0
        for state in self.sessions.states():
            if state.stale:
                self._refresh_session(state)
                refreshed += 1
        return refreshed

    def reload_model(self, state_dict: dict) -> None:
        """Swap in new model weights and re-anchor every live session.

        Order matters: weights load in place (the pipeline shares the
        model object), worker-pool replicas respawn from the new state
        dict (they were built from a pickle of the old one — the serial
        backend's context too), and then every open session re-anchors
        (pool re-encoded under the new weights, Augmenter cache purged)
        so no later prediction mixes old-weight state with new weights.
        Callers coordinating with in-flight traffic drain first — the
        gateway's :meth:`~repro.serving.ServingGateway.reload_model`
        does exactly that.
        """
        self.model.load_state_dict(state_dict)
        self.model.eval()
        if self.router is not None:
            self.router.reload_model(self.model)
        for state in self.sessions.states():
            self._refresh_session(state)

    def _store_pool(self, candidate_emb: np.ndarray):
        """At-rest representation of a session's pool embeddings.

        The exact float ndarray by default; int8 codes + per-row scales
        under ``config.pool_quantization = "int8"`` (read back through
        :meth:`SessionState.pool_embeddings`).
        """
        if self.config.pool_quantization == "int8":
            return quantize_pool(candidate_emb)
        return candidate_emb

    def _refresh_session(self, session: SessionState) -> None:
        """Re-anchor a stale session to the current graph epoch."""
        pool, pool_labels = self.pipeline.select_candidate_pool(
            session.episode, session.shots)
        with scoped_registry(self.obs):
            candidate_emb, session.candidate_importance = (
                self.pipeline.encode_points(pool))
        session.candidate_emb = self._store_pool(candidate_emb)
        session.pool_labels = pool_labels
        session.augmenter.invalidate()
        session.dependent_nodes = self._dependencies(pool)
        session.graph_version = self.dataset.graph.version
        session.stale = False

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, session_id: str, datapoint: Datapoint,
               trace=None) -> int:
        """Enqueue one query for ``session_id``; returns its ticket.

        Raises ``KeyError`` when the session is unknown (never opened,
        evicted, or expired) — callers re-open and resubmit.  ``trace``
        optionally attaches a sampled
        :class:`~repro.obs.TraceContext` that rides the queue and
        collects the batch tick's per-stage spans.
        """
        self._sweep_sessions()
        self.sessions.get(session_id)  # liveness check + recency touch
        return self.scheduler.submit(session_id, datapoint, trace=trace)

    def result(self, request_id: int) -> ServeResult | None:
        """Completed result for a ticket, if its batch has run."""
        return self._results.get(request_id)

    def step(self, force: bool = False) -> list[ServeResult]:
        """Run one micro-batch if the release policy fires (or ``force``)."""
        self._sweep_sessions()
        if not (force or self.scheduler.ready()):
            return []
        batch = self.scheduler.next_batch()
        if not batch:
            return []
        return self._process(batch)

    def drain(self) -> list[ServeResult]:
        """Flush the queue completely; returns results in arrival order."""
        results: list[ServeResult] = []
        while len(self.scheduler):
            results.extend(self.step(force=True))
        return results

    # ------------------------------------------------------------------
    def _process(self, batch: list[PendingRequest]) -> list[ServeResult]:
        """One coalesced encoder pass, then per-session scatter."""
        with scoped_registry(self.obs):
            return self._process_scoped(batch)

    def _process_scoped(self, batch: list[PendingRequest]
                        ) -> list[ServeResult]:
        start = self.clock()
        obs = self.obs
        traces = [request.trace for request in batch
                  if request.trace is not None]
        # Hot path: every pending subgraph — across sessions — in one
        # disjoint-union GNN pass, assembled into the scheduler's reusable
        # arena buffers (no per-tick batch allocation).  The batch scope
        # attaches the encode/shard-stage spans to every traced request
        # riding this batch.
        with batch_scope(traces), span("encode"):
            emb, importance = self.pipeline.encode_points(
                [request.datapoint for request in batch],
                arena=self.scheduler.arena)
        wait_hist = obs.histogram(
            "repro_server_queue_wait_seconds",
            "Micro-batch scheduler queue wait per request.")
        results = []
        for i, request in enumerate(batch):
            wait_s = max(start - request.submitted_at, 0.0)
            try:
                session = self.sessions.get(request.session_id)
            except KeyError:
                results.append(ServeResult(
                    request_id=request.request_id,
                    session_id=request.session_id,
                    prediction=-1, confidence=0.0, batch_size=len(batch),
                    wait_s=wait_s, service_s=0.0, error="session-expired"))
                continue
            if session.stale:
                # The graph mutated inside this session's sampled region:
                # re-encode its pool and drop its pseudo-label cache
                # before answering, so no pre-mutation subgraph survives
                # into this prediction.
                self._refresh_session(session)
            # Prediction stays per-query and in arrival order, so each
            # session's Augmenter cache evolves exactly as it would under
            # per-query serving — batching never changes answers.
            with batch_scope([request.trace]), span("predict"):
                preds, confs, inserted = self.pipeline.predict_batch(
                    session.pool_embeddings(), session.candidate_importance,
                    session.pool_labels, emb[i:i + 1],
                    importance[i:i + 1], session.num_ways, session.shots,
                    augmenter=session.augmenter)
            wait_hist.observe(wait_s)
            if self._mutable:
                # The query's embedding now lives in the session (as a
                # potential cached prompt and as hit history), so future
                # correctness depends on its subgraph's nodes too.
                session.dependent_nodes.update(
                    self._dependencies([request.datapoint]))
            service_s = max(self.clock() - start, 0.0)
            session.stats.record(wait_s, service_s, inserted, self.clock())
            results.append(ServeResult(
                request_id=request.request_id,
                session_id=request.session_id,
                prediction=int(preds[0]), confidence=float(confs[0]),
                batch_size=len(batch), wait_s=wait_s, service_s=service_s))
        self._queries += sum(r.ok for r in results)
        self._batches += 1
        self._encoded_subgraphs += len(batch)
        obs.histogram("repro_server_batch_size",
                      "Requests per released micro-batch.",
                      buckets=BATCH_SIZE_BUCKETS).observe(len(batch))
        for result in results:
            self._results[result.request_id] = result
        while len(self._results) > self.result_buffer_size:
            self._results.popitem(last=False)
        return results

    # ------------------------------------------------------------------
    @classmethod
    def from_pretrained(cls, source: str, dataset: Dataset,
                        config: GraphPrompterConfig | None = None,
                        pretrain_steps: int = 400, fast: bool = False,
                        context=None, **server_kwargs) -> "PromptServer":
        """Warm-start a server from the shared disk artifact cache.

        Loads (or trains once and caches) the GraphPrompter state
        pre-trained on ``source`` via the experiments'
        :class:`~repro.experiments.common.ExperimentContext`, then binds it
        to ``dataset``.  Pass an existing ``context`` to share artifacts
        with other experiments in-process.
        """
        # Imported lazily: experiments imports serving for serve-bench.
        from ..experiments.common import ExperimentContext, default_config

        config = config or default_config()
        if context is None:
            context = ExperimentContext(pretrain_steps=pretrain_steps,
                                        fast=fast)
        state = context.pretrained_state(source, config)
        model = GraphPrompterModel(dataset.graph.feature_dim,
                                   dataset.graph.num_relations, config)
        model.load_state_dict(state)
        return cls(model, dataset, **server_kwargs)

    @classmethod
    def restore(cls, model: GraphPrompterModel, persist: PersistentStore,
                task: str, name: str | None = None,
                **server_kwargs) -> "PromptServer":
        """Warm-start a server from a :class:`~repro.persist.PersistentStore`.

        The durable trio is rehydrated in order:

        1. **snapshot** — the graph (and, when the dead server was
           sharded, its owner map, so the restored partition is the same
           partition, not a fresh strategy assignment);
        2. **WAL replay** — every update logged after the snapshot is
           re-applied through :meth:`update_graph` (``log=False``), which
           routes each mutation through the graph *and* the shard store
           exactly as live traffic did;
        3. **session manifests** — sessions re-open in their original
           open order (reproducing the per-open RNG draw sequence) with
           their recorded tenant/priority.

        By the serving stack's bit-identity contracts the restored server
        answers every query exactly as the dead one would have.  The
        replay count lands in ``last_recovery_replayed``.
        """
        start = time.perf_counter()
        graph, owner = persist.load_graph()
        dataset = Dataset(graph, task, name=name)
        server = cls(model, dataset, persist=persist, shard_owner=owner,
                     **server_kwargs)
        replayed = persist.replay_records(
            graph,
            apply=lambda _graph, update: server.update_graph(update,
                                                             log=False))
        server.last_recovery_replayed = replayed
        for manifest in persist.sessions.load_all():
            server.open_session(
                manifest.session_id,
                episode_from_jsonable(manifest.episode),
                shots=manifest.shots,
                tenant_id=manifest.tenant_id,
                priority=manifest.priority,
                _open_index=manifest.open_index)
        persist.record_recovery_seconds(time.perf_counter() - start)
        return server
