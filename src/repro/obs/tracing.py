"""Request tracing: per-stage spans with deterministic 1-in-N sampling.

A :class:`TraceContext` follows one request through the stack — gateway
admission, class-queue wait, micro-batch encode, shard fan-out, per-query
predict — collecting named :class:`Span` durations.  Two properties keep
tracing safe to leave on in the serving path:

* **Bit-identity.**  Sampling is a counter (`every`-th submit), not a
  random draw, and a traced request's code path only *reads* the clock —
  no RNG is consumed anywhere, so a traced run's predictions are
  bit-identical to an untraced run's (``tests/test_obs.py`` pins it).

* **Batch ambience.**  The encode hot path works on whole micro-batches,
  so stage timers cannot take a per-request argument.  Instead the
  server opens a :func:`batch_scope` naming the traced requests of the
  current batch, and every :func:`span` inside attaches its duration to
  each of them (thread-local, nesting-safe) while also feeding the
  ambient registry's ``repro_stage_seconds`` histogram — one mechanism
  for live traces, scraped metrics, and the perf harness alike.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass

from .metrics import get_registry

__all__ = ["Span", "TraceContext", "Tracer", "batch_scope", "span"]

#: Registry histogram every :func:`span` feeds, labelled by stage name.
STAGE_METRIC = "repro_stage_seconds"
STAGE_HELP = "Hot-path stage duration in seconds, by pipeline stage."


@dataclass(frozen=True)
class Span:
    """One named stage's measured duration inside a trace."""

    name: str
    duration_s: float


class TraceContext:
    """Per-stage span ledger for one sampled request."""

    __slots__ = ("trace_id", "spans", "meta")

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        self.spans: list[Span] = []
        self.meta: dict = {}

    def add_span(self, name: str, duration_s: float) -> None:
        self.spans.append(Span(name, duration_s))

    def stage_seconds(self) -> dict:
        """Total recorded seconds per stage name (insertion order)."""
        totals: dict[str, float] = {}
        for entry in self.spans:
            totals[entry.name] = (totals.get(entry.name, 0.0)
                                  + entry.duration_s)
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stages = ", ".join(f"{name}={seconds * 1e3:.2f}ms"
                           for name, seconds in self.stage_seconds().items())
        return f"TraceContext({self.trace_id}: {stages})"


class Tracer:
    """Deterministic 1-in-N request sampler with a bounded trace buffer.

    ``every=0`` (the default) disables tracing: :meth:`maybe_trace`
    returns ``None`` for every request at the cost of one comparison.
    ``every=1`` traces everything — still bit-identical, because tracing
    only ever reads the clock.
    """

    def __init__(self, every: int = 0, capacity: int = 256):
        if every < 0:
            raise ValueError("every must be non-negative")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.every = every
        self.seen = 0
        self.sampled = 0
        self._completed: deque = deque(maxlen=capacity)

    def maybe_trace(self) -> TraceContext | None:
        """Sample decision for the next request (deterministic counter)."""
        index = self.seen
        self.seen += 1
        if self.every <= 0 or index % self.every:
            return None
        self.sampled += 1
        return TraceContext(f"req-{index:08d}")

    def record(self, trace: TraceContext) -> None:
        """File a finished trace (oldest falls out past capacity)."""
        self._completed.append(trace)

    def completed(self) -> list:
        """Finished traces, oldest first."""
        return list(self._completed)


# ----------------------------------------------------------------------
# Ambient batch scope: which traces the current thread's spans feed.
# ----------------------------------------------------------------------
_ACTIVE = threading.local()


def active_traces() -> list:
    return getattr(_ACTIVE, "traces", [])


@contextmanager
def batch_scope(traces: list):
    """Attach every :func:`span` in the block to ``traces``.

    The server's batch tick opens one scope over the whole-batch encode
    (each traced request in the batch shares the encode/shard spans) and
    a per-request scope around each predict call.  ``None`` entries are
    tolerated so callers can pass ``[request.trace]`` unconditionally.
    """
    live = [trace for trace in traces if trace is not None]
    previous = getattr(_ACTIVE, "traces", [])
    _ACTIVE.traces = live
    try:
        yield live
    finally:
        _ACTIVE.traces = previous


@contextmanager
def span(stage: str):
    """Time a block: feed the stage histogram + every active trace.

    The single profiling hook shared by the sampler, the arena batcher,
    the fused forward, the shard fan-out, and the serving loop — so
    ``repro bench``, live scrapes, and sampled traces all read the same
    numbers.  Costs one thread-local read and one branch when metrics
    are disabled and nothing is traced.
    """
    registry = get_registry()
    traces = getattr(_ACTIVE, "traces", [])
    if not registry.enabled and not traces:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        duration = time.perf_counter() - start
        if registry.enabled:
            registry.histogram(STAGE_METRIC, STAGE_HELP,
                               ("stage",)).observe(duration, stage=stage)
        for trace in traces:
            trace.add_span(stage, duration)
