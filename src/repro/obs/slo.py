"""SLO specs + evaluation over :class:`MetricsRegistry` snapshots.

Objectives are declarative, immutable specs; evidence is *only* what the
metrics registry already exports.  The engine never touches the serving
stack or keeps ad-hoc timers: a driver captures
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` at window
boundaries, and :func:`evaluate` judges the deltas —

* the **full span** (first → last snapshot) decides pass/fail;
* every **adjacent-snapshot window** gets its own burn rate
  (measured / budget), so a short spike that the full span averages
  away still surfaces as a *burn alert* (multi-window burn-rate
  evaluation, the offline analogue of fast/slow-burn paging);
* a failed objective is **attributed**: the dominant stage of the
  span's ``repro_stage_seconds`` delta is named in the verdict, so "p95
  blew the budget" arrives as "…and 71% of stage time was ``forward``".

Counter deltas subtract; histogram deltas subtract per bucket (exact,
because every snapshot shares the fixed log-2 layout); gauges take the
end value.  Quantiles over delta histograms mirror
:meth:`~repro.obs.metrics.Histogram.quantile` (interpolate within the
bucket, clamp at the last bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tracing import STAGE_METRIC

__all__ = [
    "SLOCheck",
    "ObjectiveResult",
    "SLOVerdict",
    "SLOSpec",
    "LatencyQuantileSLO",
    "RatioSLO",
    "RecoveryTimeSLO",
    "shed_rate_slo",
    "deadline_miss_slo",
    "snapshot_delta",
    "counter_total",
    "histogram_quantile",
    "histogram_count",
    "stage_profile",
    "evaluate",
    "render_report",
]


# ----------------------------------------------------------------------
# Snapshot algebra: label-subset selection, deltas, quantiles.
# ----------------------------------------------------------------------

def _matches(labelnames: list, key: list, labels: dict) -> bool:
    """True when the series key agrees with the label subset."""
    for name, want in labels.items():
        if name not in labelnames:
            return False
        if key[labelnames.index(name)] != str(want):
            return False
    return True


def counter_total(snapshot: dict, name: str,
                  labels: dict | None = None) -> float:
    """Sum of every matching series (counter value or histogram sum)."""
    entry = snapshot.get(name)
    if entry is None:
        return 0.0
    total = 0.0
    for key, value in entry["series"]:
        if _matches(entry["labelnames"], key, labels or {}):
            total += value["sum"] if entry["kind"] == "histogram" else value
    return total


def _merged_histogram(snapshot: dict, name: str, labels: dict | None):
    """Matching histogram series folded together: (buckets, counts, count)."""
    entry = snapshot.get(name)
    if entry is None or entry["kind"] != "histogram":
        return None
    counts = None
    observed = 0
    for key, value in entry["series"]:
        if not _matches(entry["labelnames"], key, labels or {}):
            continue
        if counts is None:
            counts = [0] * len(value["counts"])
        for i, c in enumerate(value["counts"]):
            counts[i] += c
        observed += value["count"]
    if counts is None:
        return None
    return entry["buckets"], counts, observed


def histogram_count(snapshot: dict, name: str,
                    labels: dict | None = None) -> int:
    merged = _merged_histogram(snapshot, name, labels)
    return merged[2] if merged else 0


def histogram_quantile(snapshot: dict, name: str, q: float,
                       labels: dict | None = None) -> float:
    """q-quantile over matching series, interpolated within its bucket.

    Mirrors :meth:`~repro.obs.metrics.Histogram.quantile` over plain
    snapshot data; returns ``0.0`` when nothing was observed.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    merged = _merged_histogram(snapshot, name, labels)
    if merged is None or not merged[2]:
        return 0.0
    buckets, counts, observed = merged
    rank = q * observed
    cumulative = 0.0
    for index, bucket_count in enumerate(counts):
        if not bucket_count:
            continue
        if cumulative + bucket_count >= rank:
            lo = buckets[index - 1] if index > 0 else 0.0
            hi = buckets[index] if index < len(buckets) else buckets[-1]
            fraction = (rank - cumulative) / bucket_count
            return lo + min(max(fraction, 0.0), 1.0) * (hi - lo)
        cumulative += bucket_count
    return buckets[-1]


def snapshot_delta(end: dict, start: dict) -> dict:
    """What happened between two snapshots, as a snapshot-shaped dict.

    Counters and histogram bucket counts subtract (clamped at zero —
    a series reset never produces negative rates); gauges keep the end
    value.  Series absent from ``start`` count from zero.
    """
    out: dict = {}
    for name, entry in end.items():
        base = start.get(name, {})
        base_series = {tuple(key): value
                       for key, value in base.get("series", [])}
        delta_entry = {"kind": entry["kind"], "help": entry["help"],
                       "labelnames": list(entry["labelnames"]),
                       "series": []}
        if entry["kind"] == "histogram":
            delta_entry["buckets"] = list(entry["buckets"])
        for key, value in entry["series"]:
            before = base_series.get(tuple(key))
            if entry["kind"] == "histogram":
                if before is None:
                    before = {"counts": [0] * len(value["counts"]),
                              "sum": 0.0, "count": 0}
                counts = [max(c - b, 0) for c, b in
                          zip(value["counts"], before["counts"])]
                delta_entry["series"].append([list(key), {
                    "counts": counts,
                    "sum": max(value["sum"] - before["sum"], 0.0),
                    "count": max(value["count"] - before["count"], 0),
                }])
            elif entry["kind"] == "counter":
                delta_entry["series"].append(
                    [list(key), max(value - (before or 0.0), 0.0)])
            else:  # gauge: point-in-time, delta is meaningless
                delta_entry["series"].append([list(key), value])
        out[name] = delta_entry
    return out


def stage_profile(delta: dict) -> dict:
    """Per-stage share of total stage time in a delta snapshot.

    ``{stage: {"seconds": s, "share": s/total}}``, sorted by share
    descending — the attribution a violated latency SLO points at.
    """
    entry = delta.get(STAGE_METRIC)
    if entry is None:
        return {}
    seconds: dict[str, float] = {}
    stage_index = entry["labelnames"].index("stage")
    for key, value in entry["series"]:
        stage = key[stage_index]
        seconds[stage] = seconds.get(stage, 0.0) + value["sum"]
    total = sum(seconds.values())
    if total <= 0.0:
        return {}
    ordered = sorted(seconds.items(), key=lambda kv: -kv[1])
    return {stage: {"seconds": s, "share": s / total}
            for stage, s in ordered}


# ----------------------------------------------------------------------
# Objectives.
# ----------------------------------------------------------------------

def _burn(measured: float, budget: float) -> float:
    """Budget consumption multiple; a zero budget burns at ∞ when hit."""
    if budget > 0.0:
        return measured / budget
    return float("inf") if measured > 0.0 else 0.0


@dataclass(frozen=True)
class SLOCheck:
    """One objective judged over one delta snapshot."""

    objective: str
    description: str
    measured: float
    threshold: float
    burn: float
    ok: bool
    detail: str = ""


@dataclass(frozen=True)
class LatencyQuantileSLO:
    """``quantile(latency histogram) ≤ threshold_s`` for one class."""

    name: str
    threshold_s: float
    quantile: float = 0.95
    priority: str | None = None
    metric: str = "repro_gateway_queue_wait_seconds"

    def describe(self) -> str:
        scope = f"{{priority={self.priority}}}" if self.priority else ""
        return (f"p{int(self.quantile * 100)} {self.metric}{scope} "
                f"≤ {self.threshold_s * 1e3:.0f}ms")

    def evaluate(self, delta: dict) -> SLOCheck:
        labels = {"priority": self.priority} if self.priority else None
        observed = histogram_count(delta, self.metric, labels)
        measured = histogram_quantile(delta, self.metric, self.quantile,
                                      labels)
        ok = measured <= self.threshold_s
        detail = f"{observed} observations"
        if not observed:
            ok, detail = True, "no observations (vacuous)"
        return SLOCheck(self.name, self.describe(), measured,
                        self.threshold_s, _burn(measured, self.threshold_s),
                        ok, detail)


@dataclass(frozen=True)
class RatioSLO:
    """``numerator / denominator ≤ max_ratio`` over counter deltas.

    The shape behind shed-rate and deadline-miss objectives; label
    filters are tuples of pairs so the spec stays hashable/frozen.
    """

    name: str
    max_ratio: float
    numerator: str
    denominator: str
    numerator_labels: tuple = ()
    denominator_labels: tuple = ()

    def describe(self) -> str:
        scope = "".join(f"{{{k}={v}}}" for k, v in self.numerator_labels)
        return (f"{self.numerator}{scope} / {self.denominator} "
                f"≤ {self.max_ratio:.2f}")

    def evaluate(self, delta: dict) -> SLOCheck:
        num = counter_total(delta, self.numerator,
                            dict(self.numerator_labels))
        den = counter_total(delta, self.denominator,
                            dict(self.denominator_labels))
        measured = num / den if den > 0.0 else 0.0
        ok = measured <= self.max_ratio
        detail = f"{num:.0f}/{den:.0f}"
        if den == 0.0:
            ok, detail = True, "empty denominator (vacuous)"
        return SLOCheck(self.name, self.describe(), measured,
                        self.max_ratio, _burn(measured, self.max_ratio),
                        ok, detail)


def shed_rate_slo(priority: str, max_ratio: float,
                  name: str | None = None) -> RatioSLO:
    """Shed fraction of submitted traffic for one priority class."""
    return RatioSLO(
        name=name or f"shed-rate-{priority}", max_ratio=max_ratio,
        numerator="repro_gateway_shed_total",
        denominator="repro_gateway_submitted_total",
        numerator_labels=(("priority", priority),),
        denominator_labels=(("priority", priority),))


def deadline_miss_slo(max_ratio: float, priority: str | None = None,
                      name: str | None = None) -> RatioSLO:
    """Deadline-miss fraction of completed requests (optionally scoped)."""
    labels = (("priority", priority),) if priority else ()
    suffix = f"-{priority}" if priority else ""
    return RatioSLO(
        name=name or f"deadline-miss{suffix}", max_ratio=max_ratio,
        numerator="repro_gateway_deadline_misses_total",
        denominator="repro_gateway_completed_total",
        numerator_labels=labels, denominator_labels=labels)


@dataclass(frozen=True)
class RecoveryTimeSLO:
    """Worst recovery (snapshot-load + WAL replay) bounded.

    ``quantile=1.0`` reads the top bucket bound the slowest recovery
    landed in — a recovery-time ceiling from the durability tier's own
    ``repro_recovery_seconds`` histogram.
    """

    name: str
    threshold_s: float
    quantile: float = 1.0
    metric: str = "repro_recovery_seconds"

    def describe(self) -> str:
        return f"recovery time ≤ {self.threshold_s:.1f}s"

    def evaluate(self, delta: dict) -> SLOCheck:
        observed = histogram_count(delta, self.metric, None)
        measured = histogram_quantile(delta, self.metric, self.quantile)
        ok = measured <= self.threshold_s
        detail = f"{observed} recoveries"
        if not observed:
            ok, detail = True, "no recoveries (vacuous)"
        return SLOCheck(self.name, self.describe(), measured,
                        self.threshold_s, _burn(measured, self.threshold_s),
                        ok, detail)


# ----------------------------------------------------------------------
# Spec + multi-window evaluation.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SLOSpec:
    """A named objective set plus its fast-burn alert multiple."""

    name: str
    objectives: tuple = ()
    #: A single window burning ≥ this multiple of its budget raises a
    #: burn alert even when the full span still passes.
    fast_burn: float = 4.0


@dataclass(frozen=True)
class ObjectiveResult:
    """One objective's full-span check + per-window burn rates."""

    check: SLOCheck
    window_burns: tuple = ()
    burn_alert: bool = False
    #: Dominant pipeline stage over the span (set on violated latency
    #: objectives): ``(stage, share)``.
    attribution: tuple | None = None


@dataclass(frozen=True)
class SLOVerdict:
    """The structured report: spec, verdicts, and stage attribution."""

    spec: str
    ok: bool
    results: tuple = ()
    stages: dict = field(default_factory=dict)

    @property
    def burn_alerts(self) -> int:
        return sum(1 for r in self.results if r.burn_alert)

    def to_jsonable(self) -> dict:
        return {
            "spec": self.spec, "ok": self.ok,
            "burn_alerts": self.burn_alerts,
            "objectives": [{
                "name": r.check.objective,
                "objective": r.check.description,
                "measured": r.check.measured,
                "threshold": r.check.threshold,
                "burn": (r.check.burn if r.check.burn != float("inf")
                         else "inf"),
                "ok": r.check.ok,
                "detail": r.check.detail,
                "window_burns": [b if b != float("inf") else "inf"
                                 for b in r.window_burns],
                "burn_alert": r.burn_alert,
                "attribution": (list(r.attribution)
                                if r.attribution else None),
            } for r in self.results],
            "stage_profile": {stage: cells["share"]
                              for stage, cells in self.stages.items()},
        }


def evaluate(spec: SLOSpec, snapshots: list) -> SLOVerdict:
    """Judge ``spec`` over a sequence of registry snapshots.

    ``snapshots`` are ≥ 2 :meth:`~MetricsRegistry.snapshot` captures at
    window boundaries; the first→last delta decides pass/fail, the
    adjacent deltas feed the burn-rate windows.
    """
    if len(snapshots) < 2:
        raise ValueError("need at least two snapshots (a start and an end)")
    overall = snapshot_delta(snapshots[-1], snapshots[0])
    windows = [snapshot_delta(b, a)
               for a, b in zip(snapshots, snapshots[1:])]
    stages = stage_profile(overall)
    dominant = next(iter(stages.items()), None)
    results = []
    for objective in spec.objectives:
        check = objective.evaluate(overall)
        burns = tuple(objective.evaluate(window).burn
                      for window in windows)
        alert = any(b >= spec.fast_burn for b in burns)
        attribution = None
        if not check.ok and dominant is not None:
            attribution = (dominant[0], dominant[1]["share"])
        results.append(ObjectiveResult(check=check, window_burns=burns,
                                       burn_alert=alert,
                                       attribution=attribution))
    ok = all(r.check.ok for r in results)
    return SLOVerdict(spec=spec.name, ok=ok, results=tuple(results),
                      stages=stages)


def render_report(verdicts: list) -> str:
    """Plain-text verdict table (the nightly artifact / CLI output)."""
    lines = []
    for verdict in verdicts:
        status = "OK" if verdict.ok else "VIOLATED"
        lines.append(f"[{verdict.spec}] {status} "
                     f"({verdict.burn_alerts} burn alert(s))")
        for r in verdict.results:
            mark = "pass" if r.check.ok else "FAIL"
            burn = ("inf" if r.check.burn == float("inf")
                    else f"{r.check.burn:.2f}")
            line = (f"  {mark:4s} {r.check.objective:<24s} "
                    f"{r.check.description}  measured="
                    f"{r.check.measured:.4g} burn={burn} "
                    f"[{r.check.detail}]")
            if r.burn_alert:
                windows = ", ".join(
                    "inf" if b == float("inf") else f"{b:.1f}"
                    for b in r.window_burns)
                line += f" burn-alert windows=[{windows}]"
            if r.attribution is not None:
                stage, share = r.attribution
                line += f" dominant-stage={stage} ({share:.0%})"
            lines.append(line)
        if verdict.stages:
            profile = " ".join(
                f"{stage}={cells['share']:.0%}"
                for stage, cells in list(verdict.stages.items())[:5])
            lines.append(f"  stage profile: {profile}")
    return "\n".join(lines) + "\n"
