"""Prometheus text-exposition (format 0.0.4) rendering of a registry.

:func:`render` turns a :class:`~repro.obs.metrics.MetricsRegistry` into
the plain-text format every Prometheus-compatible scraper ingests::

    # HELP repro_gateway_shed_total Requests refused at admission.
    # TYPE repro_gateway_shed_total counter
    repro_gateway_shed_total{tenant="acme",priority="batch",\
reason="queue-full"} 12

Histograms render the full cumulative ``_bucket{le=...}`` ladder plus
``_sum`` and ``_count``, and label values are escaped per the spec
(backslash, double quote, newline).  The writer is dependency-free on
purpose — the repo's no-new-deps rule, and the format is simple enough
that a correct hand-rolled writer beats vendoring a client library.
"""

from __future__ import annotations

from .metrics import MetricsRegistry, _HistogramSeries

__all__ = ["render", "escape_label_value"]


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition spec."""
    return (value.replace("\\", "\\\\")
                 .replace("\n", "\\n")
                 .replace('"', '\\"'))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    return f"{bound:.9g}"


def _label_string(labelnames: tuple, labelvalues: tuple,
                  extra: tuple = ()) -> str:
    pairs = [f'{name}="{escape_label_value(value)}"'
             for name, value in zip(labelnames, labelvalues)]
    pairs.extend(f'{name}="{escape_label_value(value)}"'
                 for name, value in extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _render_histogram(lines: list, instrument, labelvalues: tuple,
                      series: _HistogramSeries) -> None:
    cumulative = 0
    for bound, count in zip(instrument.buckets, series.counts):
        cumulative += count
        labels = _label_string(instrument.labelnames, labelvalues,
                               extra=(("le", _format_bound(bound)),))
        lines.append(f"{instrument.name}_bucket{labels} {cumulative}")
    labels = _label_string(instrument.labelnames, labelvalues,
                           extra=(("le", "+Inf"),))
    lines.append(f"{instrument.name}_bucket{labels} {series.count}")
    base = _label_string(instrument.labelnames, labelvalues)
    lines.append(f"{instrument.name}_sum{base} "
                 f"{_format_value(series.total)}")
    lines.append(f"{instrument.name}_count{base} {series.count}")


def render(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (trailing newline)."""
    lines: list[str] = []
    for instrument in registry.instruments():
        if instrument.help:
            lines.append(f"# HELP {instrument.name} "
                         f"{_escape_help(instrument.help)}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        series_map = instrument.series()
        for labelvalues in sorted(series_map):
            series = series_map[labelvalues]
            if isinstance(series, _HistogramSeries):
                _render_histogram(lines, instrument, labelvalues, series)
            else:
                labels = _label_string(instrument.labelnames, labelvalues)
                lines.append(f"{instrument.name}{labels} "
                             f"{_format_value(series)}")
    return "\n".join(lines) + "\n" if lines else ""
