"""Unified observability: metrics registry, tracing, Prometheus export.

One substrate for every signal the stack emits (ROADMAP item 5):

* :mod:`repro.obs.metrics` — typed Counter/Gauge/Histogram instruments in
  a thread-safe :class:`MetricsRegistry`; fixed log-scale buckets make
  histograms mergeable across shard worker processes, and a disabled
  registry costs one branch per event.
* :mod:`repro.obs.tracing` — :class:`TraceContext` per-stage spans with
  deterministic 1-in-N sampling (no RNG: traced runs stay bit-identical
  to untraced ones) and the :func:`span` profiling hook the sampler,
  batcher, fused forward, and shard fan-out all share.
* :mod:`repro.obs.exposition` — Prometheus text-exposition writer.
* :mod:`repro.obs.bridge` — scrape-time mirrors of the legacy ledgers
  (``ServerStats``/``TenantLedger``/``CacheStats``) into the registry,
  plus :func:`scrape` for one-call gateway/server exposition.
* :mod:`repro.obs.httpd` — optional stdlib ``GET /metrics`` endpoint.
* :mod:`repro.obs.slo` — declarative SLO specs + multi-window burn-rate
  evaluation over registry snapshot deltas, with per-stage latency
  attribution; drives the ``serve-bench-scenarios`` verdicts.

``repro metrics`` (:mod:`repro.obs.cli`) demos the whole layer against a
synthetic burst; the serving gateway exposes the same text via
:meth:`~repro.serving.ServingGateway.start_metrics_endpoint`.
"""

from .bridge import collect, export_sessions, export_stats, scrape
from .exposition import escape_label_value, render
from .httpd import MetricsEndpoint
from .metrics import (
    BATCH_SIZE_BUCKETS,
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    scoped_registry,
    set_global_registry,
)
from .slo import (
    LatencyQuantileSLO,
    RatioSLO,
    RecoveryTimeSLO,
    SLOCheck,
    SLOSpec,
    SLOVerdict,
    deadline_miss_slo,
    render_report,
    shed_rate_slo,
    snapshot_delta,
)
from .slo import evaluate as evaluate_slos
from .tracing import Span, TraceContext, Tracer, batch_scope, span

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencyQuantileSLO",
    "MetricsEndpoint",
    "MetricsRegistry",
    "RatioSLO",
    "RecoveryTimeSLO",
    "SLOCheck",
    "SLOSpec",
    "SLOVerdict",
    "Span",
    "TraceContext",
    "Tracer",
    "batch_scope",
    "collect",
    "deadline_miss_slo",
    "escape_label_value",
    "evaluate_slos",
    "export_sessions",
    "export_stats",
    "get_registry",
    "render",
    "render_report",
    "scoped_registry",
    "scrape",
    "set_global_registry",
    "shed_rate_slo",
    "snapshot_delta",
    "span",
]
