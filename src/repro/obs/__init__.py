"""Unified observability: metrics registry, tracing, Prometheus export.

One substrate for every signal the stack emits (ROADMAP item 5):

* :mod:`repro.obs.metrics` — typed Counter/Gauge/Histogram instruments in
  a thread-safe :class:`MetricsRegistry`; fixed log-scale buckets make
  histograms mergeable across shard worker processes, and a disabled
  registry costs one branch per event.
* :mod:`repro.obs.tracing` — :class:`TraceContext` per-stage spans with
  deterministic 1-in-N sampling (no RNG: traced runs stay bit-identical
  to untraced ones) and the :func:`span` profiling hook the sampler,
  batcher, fused forward, and shard fan-out all share.
* :mod:`repro.obs.exposition` — Prometheus text-exposition writer.
* :mod:`repro.obs.bridge` — scrape-time mirrors of the legacy ledgers
  (``ServerStats``/``TenantLedger``/``CacheStats``) into the registry,
  plus :func:`scrape` for one-call gateway/server exposition.
* :mod:`repro.obs.httpd` — optional stdlib ``GET /metrics`` endpoint.

``repro metrics`` (:mod:`repro.obs.cli`) demos the whole layer against a
synthetic burst; the serving gateway exposes the same text via
:meth:`~repro.serving.ServingGateway.start_metrics_endpoint`.
"""

from .bridge import collect, export_sessions, export_stats, scrape
from .exposition import escape_label_value, render
from .httpd import MetricsEndpoint
from .metrics import (
    BATCH_SIZE_BUCKETS,
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    scoped_registry,
    set_global_registry,
)
from .tracing import Span, TraceContext, Tracer, batch_scope, span

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsEndpoint",
    "MetricsRegistry",
    "Span",
    "TraceContext",
    "Tracer",
    "batch_scope",
    "collect",
    "escape_label_value",
    "export_sessions",
    "export_stats",
    "get_registry",
    "render",
    "scoped_registry",
    "scrape",
    "set_global_registry",
    "span",
]
