"""``repro metrics`` — live exposition demo of the observability layer.

Runs a small seeded multi-tenant burst through the full serving stack —
gateway admission → deadline batching → sharded encode → per-query
predict — with tracing enabled, then prints the Prometheus text
exposition covering every layer (gateway counters, session cache
mirrors, shard ledgers, kernel stage histograms) plus the per-stage
latency breakdown of one sampled trace.

After the burst, a durability mini-cycle runs against the same registry
— WAL-logged update → snapshot → warm-start recovery → a 2-replica
fleet losing one replica — so the exposition also carries the persist
tier's counters (``repro_wal_appends_total``,
``repro_snapshot_writes_total``, ``repro_recovery_*``) and the
:class:`~repro.serving.ReplicaSet` failover/kill counters, with a
recovery-time SLO verdict evaluated from the same snapshots.

The model is deliberately untrained: this command exercises the metrics
plumbing, not prediction quality, so it stays seconds-fast.  Use
``--snapshot`` to write the exposition text to a file (CI's nightly
metrics artifact) and ``--json`` for the raw registry snapshot.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os

__all__ = ["metrics_main", "build_metrics_parser"]


def build_metrics_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="observability demo: burst + Prometheus exposition",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="smallest workload (CI smoke scale)")
    parser.add_argument(
        "--trace-every", type=int, default=4,
        help="deterministic trace sampling rate, 1-in-N "
             "(default: %(default)s; 0 disables tracing)")
    parser.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="also write the exposition text to PATH")
    parser.add_argument(
        "--json", default=None, metavar="PATH", dest="json_path",
        help="also write the raw registry snapshot as JSON to PATH")
    return parser


def metrics_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro metrics``."""
    args = build_metrics_parser().parse_args(argv)

    import tempfile

    import numpy as np

    from ..core import (
        GraphPrompterConfig,
        GraphPrompterModel,
        sample_episode,
    )
    from ..datasets import EDGE_TASK, Dataset
    from ..datasets.synthetic import synthetic_knowledge_graph
    from ..graph import GraphUpdate
    from ..persist import PersistentStore
    from ..serving import (
        Priority,
        PromptServer,
        ReplicaSet,
        ServingGateway,
    )
    from .bridge import scrape
    from .metrics import MetricsRegistry
    from .slo import RecoveryTimeSLO, SLOSpec, evaluate

    nodes, edges, queries = (200, 1200, 3) if args.fast else (400, 3000, 6)
    graph = synthetic_knowledge_graph(nodes, 6, edges, rng=0,
                                      name="kg-metrics")
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    config = GraphPrompterConfig(hidden_dim=16, max_subgraph_nodes=12,
                                 num_gnn_layers=2, mutable_graph=True)
    model = GraphPrompterModel(graph.feature_dim, graph.num_relations,
                               config)
    registry = MetricsRegistry()
    plan = [
        ("acme", Priority.INTERACTIVE,
         sample_episode(dataset, num_ways=3, num_queries=queries, rng=100)),
        ("globex", Priority.BATCH,
         sample_episode(dataset, num_ways=3, num_queries=queries, rng=101)),
        ("initech", Priority.BACKGROUND,
         sample_episode(dataset, num_ways=3, num_queries=queries, rng=102)),
    ]

    async def durability(store_dir: str) -> dict:
        """WAL → snapshot → recovery → replica kill, all in ``registry``.

        Exercises every PR-7 durability counter so the exposition below
        actually carries them (they register at zero otherwise).
        """
        base = Dataset(graph.rebuild(), EDGE_TASK, rng=0, name="kg-dur")
        store = PersistentStore(store_dir, registry=registry)
        server = PromptServer(model, base, max_batch_size=4, rng=0,
                              persist=store, registry=registry)
        episode = sample_episode(base, num_ways=3, num_queries=2, rng=103)
        server.open_session("durable-0", episode, tenant_id="acme")
        server.submit("durable-0", episode.queries[0])
        server.drain()
        rng = np.random.default_rng(7)
        server.update_graph(GraphUpdate(
            add_src=rng.integers(0, base.graph.num_nodes, size=4),
            add_dst=rng.integers(0, base.graph.num_nodes, size=4),
            add_rel=rng.integers(0, base.graph.num_relations, size=4)))
        server.save_snapshot()
        server.update_graph(GraphUpdate(
            add_src=rng.integers(0, base.graph.num_nodes, size=2),
            add_dst=rng.integers(0, base.graph.num_nodes, size=2),
            add_rel=rng.integers(0, base.graph.num_relations, size=2)))
        server.close()

        # Warm-start from the store: snapshot load + one-record WAL
        # replay + manifest session re-open → recovery counters.
        recovered = PromptServer.restore(
            model, PersistentStore(store_dir, registry=registry),
            base.task, name="kg-dur", rng=0, max_batch_size=4,
            registry=registry)
        replayed = recovered.last_recovery_replayed
        recovered.close()

        # A 2-replica fleet losing one replica mid-flight → kill +
        # failover counters (tenants re-route to the survivor).
        fleet_store = PersistentStore(os.path.join(store_dir, "fleet"),
                                      registry=registry)

        def factory(replica_id: int) -> ServingGateway:
            replica_data = Dataset(graph.rebuild(), EDGE_TASK, rng=0,
                                   name="kg-fleet")
            replica = PromptServer(model, replica_data, max_batch_size=4,
                                   rng=0, persist=fleet_store,
                                   registry=registry)
            return ServingGateway(replica, auto_drain=False,
                                  registry=registry)

        fleet = ReplicaSet(factory, num_replicas=2, store=fleet_store,
                           registry=registry)
        tenants = ["acme", "globex", "initech"]
        fleet_episodes = {}
        for index, tenant in enumerate(tenants):
            fleet_episodes[tenant] = sample_episode(
                Dataset(graph.rebuild(), EDGE_TASK, rng=0), num_ways=3,
                num_queries=2, rng=110 + index)
            fleet.open_session(tenant, f"{tenant}-s",
                               fleet_episodes[tenant],
                               priority=Priority.INTERACTIVE)
        victim = fleet.route(tenants[0])
        fleet.kill(victim)
        moved = 0
        for tenant in tenants:
            index = fleet.route(tenant)
            future = fleet.replicas[index].submit_nowait(
                f"{tenant}-s", fleet_episodes[tenant].queries[1])
            await fleet.replicas[index].flush()
            if (not isinstance(future, asyncio.Future)
                    or not future.result().ok):
                raise RuntimeError(
                    f"tenant {tenant} was not served after failover")
            moved += 1
        await fleet.close()
        return {"replayed": replayed, "served_after_failover": moved}

    async def burst(store_dir: str) -> tuple:
        server = PromptServer(model, dataset, max_batch_size=8, rng=0,
                              num_shards=2, num_workers=2,
                              worker_backend="serial", registry=registry)
        gateway = ServingGateway(server, auto_drain=False,
                                 trace_every=args.trace_every,
                                 registry=registry)
        for index, (tenant, priority, episode) in enumerate(plan):
            gateway.open_session(tenant, f"session-{index}", episode,
                                 priority=priority)
        futures = []
        for q in range(queries):
            for index, (_, _, episode) in enumerate(plan):
                futures.append(gateway.submit_nowait(f"session-{index}",
                                                     episode.queries[q]))
            await gateway.flush()
        pre_durability = registry.snapshot()
        durable = await durability(store_dir)
        # Scraped after the durability cycle: the exposition carries the
        # persist/recovery and replica-fleet counters too.
        text = scrape(gateway)
        traces = gateway.tracer.completed()
        await gateway.close()
        server.close()
        return text, traces, len(futures), durable, pre_durability

    with tempfile.TemporaryDirectory(prefix="repro-metrics-") as tmp:
        text, traces, submitted, durable, pre_durability = asyncio.run(
            burst(tmp))
    print(text, end="")
    print(f"# {submitted} requests served, {len(traces)} traced "
          f"(1-in-{args.trace_every})")
    if traces:
        trace = traces[-1]
        print(f"# trace {trace.trace_id} "
              f"({trace.meta.get('tenant', '?')}, "
              f"{trace.meta.get('priority', '?')}):")
        for name, seconds in trace.stage_seconds().items():
            print(f"#   {name:<16} {seconds * 1e6:9.1f} us")
    # Durability tier summary: the same counters the exposition above
    # carries, plus a recovery-time SLO verdict computed from registry
    # snapshots bracketing the durability cycle.
    recovery_hist = registry.histogram("repro_recovery_seconds")
    print(f"# durability: wal_appends="
          f"{registry.counter('repro_wal_appends_total').sum():.0f} "
          f"snapshot_writes="
          f"{registry.counter('repro_snapshot_writes_total').sum():.0f} "
          f"recovery_replayed={durable['replayed']} "
          f"recovery_mean_ms={recovery_hist.mean() * 1e3:.1f}")
    print(f"# fleet: replica_kills="
          f"{registry.counter('repro_replicaset_kills_total').sum():.0f} "
          f"failovers="
          f"{registry.counter('repro_replicaset_failovers_total').sum():.0f} "
          f"served_after_failover={durable['served_after_failover']} "
          f"worker_respawns="
          f"{registry.counter('repro_worker_pool_respawns_total').sum():.0f}")
    verdict = evaluate(
        SLOSpec(name="durability", objectives=(
            RecoveryTimeSLO(name="recovery-time", threshold_s=30.0),)),
        [pre_durability, registry.snapshot()])
    check = verdict.results[0].check
    print(f"# slo: {check.objective} {'pass' if check.ok else 'FAIL'} "
          f"({check.description}; measured={check.measured:.3f}s, "
          f"{check.detail})")
    if args.snapshot:
        with open(args.snapshot, "w") as handle:
            handle.write(text)
        print(f"# [wrote {args.snapshot}]")
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(registry.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# [wrote {args.json_path}]")
    return 0
