"""``repro metrics`` — live exposition demo of the observability layer.

Runs a small seeded multi-tenant burst through the full serving stack —
gateway admission → deadline batching → sharded encode → per-query
predict — with tracing enabled, then prints the Prometheus text
exposition covering every layer (gateway counters, session cache
mirrors, shard ledgers, kernel stage histograms) plus the per-stage
latency breakdown of one sampled trace.

The model is deliberately untrained: this command exercises the metrics
plumbing, not prediction quality, so it stays seconds-fast.  Use
``--snapshot`` to write the exposition text to a file (CI's nightly
metrics artifact) and ``--json`` for the raw registry snapshot.
"""

from __future__ import annotations

import argparse
import asyncio
import json

__all__ = ["metrics_main", "build_metrics_parser"]


def build_metrics_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="observability demo: burst + Prometheus exposition",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="smallest workload (CI smoke scale)")
    parser.add_argument(
        "--trace-every", type=int, default=4,
        help="deterministic trace sampling rate, 1-in-N "
             "(default: %(default)s; 0 disables tracing)")
    parser.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="also write the exposition text to PATH")
    parser.add_argument(
        "--json", default=None, metavar="PATH", dest="json_path",
        help="also write the raw registry snapshot as JSON to PATH")
    return parser


def metrics_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro metrics``."""
    args = build_metrics_parser().parse_args(argv)

    from ..core import (
        GraphPrompterConfig,
        GraphPrompterModel,
        sample_episode,
    )
    from ..datasets import EDGE_TASK, Dataset
    from ..datasets.synthetic import synthetic_knowledge_graph
    from ..serving import Priority, PromptServer, ServingGateway
    from .bridge import scrape
    from .metrics import MetricsRegistry

    nodes, edges, queries = (200, 1200, 3) if args.fast else (400, 3000, 6)
    graph = synthetic_knowledge_graph(nodes, 6, edges, rng=0,
                                      name="kg-metrics")
    dataset = Dataset(graph, EDGE_TASK, rng=0)
    config = GraphPrompterConfig(hidden_dim=16, max_subgraph_nodes=12,
                                 num_gnn_layers=2)
    model = GraphPrompterModel(graph.feature_dim, graph.num_relations,
                               config)
    registry = MetricsRegistry()
    plan = [
        ("acme", Priority.INTERACTIVE,
         sample_episode(dataset, num_ways=3, num_queries=queries, rng=100)),
        ("globex", Priority.BATCH,
         sample_episode(dataset, num_ways=3, num_queries=queries, rng=101)),
        ("initech", Priority.BACKGROUND,
         sample_episode(dataset, num_ways=3, num_queries=queries, rng=102)),
    ]

    async def burst() -> tuple:
        server = PromptServer(model, dataset, max_batch_size=8, rng=0,
                              num_shards=2, num_workers=2,
                              worker_backend="serial", registry=registry)
        gateway = ServingGateway(server, auto_drain=False,
                                 trace_every=args.trace_every,
                                 registry=registry)
        for index, (tenant, priority, episode) in enumerate(plan):
            gateway.open_session(tenant, f"session-{index}", episode,
                                 priority=priority)
        futures = []
        for q in range(queries):
            for index, (_, _, episode) in enumerate(plan):
                futures.append(gateway.submit_nowait(f"session-{index}",
                                                     episode.queries[q]))
            await gateway.flush()
        text = scrape(gateway)
        traces = gateway.tracer.completed()
        await gateway.close()
        server.close()
        return text, traces, len(futures)

    text, traces, submitted = asyncio.run(burst())
    print(text, end="")
    print(f"# {submitted} requests served, {len(traces)} traced "
          f"(1-in-{args.trace_every})")
    if traces:
        trace = traces[-1]
        print(f"# trace {trace.trace_id} "
              f"({trace.meta.get('tenant', '?')}, "
              f"{trace.meta.get('priority', '?')}):")
        for name, seconds in trace.stage_seconds().items():
            print(f"#   {name:<16} {seconds * 1e6:9.1f} us")
    if args.snapshot:
        with open(args.snapshot, "w") as handle:
            handle.write(text)
        print(f"# [wrote {args.snapshot}]")
    if args.json_path:
        with open(args.json_path, "w") as handle:
            json.dump(registry.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# [wrote {args.json_path}]")
    return 0
