"""Stdlib HTTP endpoint serving ``GET /metrics`` for scrapers.

:class:`MetricsEndpoint` wraps ``http.server.ThreadingHTTPServer`` in a
daemon thread: construct it with a zero-argument render callable (e.g.
``lambda: scrape(gateway)``) and point a Prometheus scraper at
``http://host:port/metrics``.  ``port=0`` binds an ephemeral port —
tests and demos read the resolved ``.port`` back.  No third-party web
framework, matching the repo's no-new-dependencies rule; the endpoint
is read-only and renders on demand, so it never blocks the serving loop.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["MetricsEndpoint"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsEndpoint:
    """Background ``/metrics`` server around a render callable."""

    def __init__(self, render_fn, host: str = "127.0.0.1", port: int = 0):
        self.render_fn = render_fn
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - stdlib handler naming
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404, "try /metrics")
                    return
                try:
                    body = endpoint.render_fn().encode("utf-8")
                except Exception as error:  # render must never kill serving
                    self.send_error(500, f"render failed: {error}")
                    return
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr
                pass

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-metrics-endpoint",
                                        daemon=True)
        self._thread.start()

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsEndpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
