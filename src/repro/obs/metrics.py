"""Typed metrics registry: counters, gauges, log-bucket histograms.

One :class:`MetricsRegistry` serves every layer of the stack — gateway
admission counters, server batch histograms, shard worker timings, kernel
stage profiles — instead of the N bespoke ledger dicts each subsystem
grew on its own.  Three properties drive the design:

* **Near-zero cost when disabled.**  Every record path checks
  ``registry.enabled`` before touching a lock, so a server built with
  ``obs_metrics_enabled=False`` pays one attribute read and one branch
  per event — the hot-path tax CI's gateway-overhead gate pins at ~0.

* **Mergeable across processes.**  Histograms share one fixed log-scale
  bucket layout (:data:`DEFAULT_BUCKETS`), so a worker process can
  :meth:`~MetricsRegistry.drain` its registry into a plain-data snapshot
  that rides home with the task result and folds into the host registry
  with :meth:`~MetricsRegistry.merge` — exact, not approximate, because
  bucket counts over identical bounds add losslessly.

* **Ambient but overridable.**  Library code records against
  :func:`get_registry`; a server scopes its own registry over a region
  with :func:`scoped_registry` (thread-local), so tests and benchmarks
  isolate their counts without threading a registry argument through
  every call site.

Instruments are identified by name; labels are free-form string pairs
declared once per instrument (Prometheus-style), and each distinct
label-value tuple owns an independent series.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager

__all__ = [
    "DEFAULT_BUCKETS",
    "BATCH_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "scoped_registry",
    "set_global_registry",
]

#: Shared histogram layout: 22 log-scale (×2) upper bounds from 10 µs to
#: ~21 s, covering everything from a single arena pass to a full drain.
#: One fixed layout for every duration histogram is what makes worker
#: snapshots merge exactly — counts over identical bounds simply add.
DEFAULT_BUCKETS = tuple(1e-5 * 2.0 ** i for i in range(22))

#: Power-of-two layout for size-valued histograms (micro-batch sizes).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class _HistogramSeries:
    """One label combination's bucket counts + running sum."""

    __slots__ = ("counts", "total", "count")

    def __init__(self, num_buckets: int):
        self.counts = [0] * (num_buckets + 1)  # +1: overflow (+Inf)
        self.total = 0.0
        self.count = 0


class _Instrument:
    """Shared series bookkeeping for every instrument kind."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: tuple):
        self.registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: dict = {}

    def _key(self, labels: dict) -> tuple:
        if (len(labels) != len(self.labelnames)
                or any(name not in labels for name in self.labelnames)):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)

    def series(self) -> dict:
        """Snapshot ``{label-values tuple: series}`` (shallow copy)."""
        with self.registry._lock:
            return dict(self._series)

    def sum(self, **labels) -> float:
        """Total over every series matching the given label subset."""
        positions = {self.labelnames.index(name): str(value)
                     for name, value in labels.items()}
        total = 0.0
        for key, value in self.series().items():
            if all(key[i] == want for i, want in positions.items()):
                total += (value.total
                          if isinstance(value, _HistogramSeries) else value)
        return total


class Counter(_Instrument):
    """Monotonically increasing count (Prometheus ``counter``)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        key = self._key(labels)
        with registry._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def set(self, value: float, **labels) -> None:
        """Mirror an externally-maintained monotonic count.

        Used by the bridge collectors that re-express legacy ledgers
        (``ServerStats``/``TenantLedger``/``CacheStats``) as registry
        instruments at scrape time.
        """
        registry = self.registry
        if not registry.enabled:
            return
        key = self._key(labels)
        with registry._lock:
            self._series[key] = float(value)

    def value(self, **labels) -> float:
        return float(self._series.get(self._key(labels), 0.0))


class Gauge(_Instrument):
    """Point-in-time value that may go up or down."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        key = self._key(labels)
        with registry._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        key = self._key(labels)
        with registry._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return float(self._series.get(self._key(labels), 0.0))


class Histogram(_Instrument):
    """Fixed-bucket distribution with exact cross-process merging."""

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: tuple, buckets: tuple = DEFAULT_BUCKETS):
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be strictly increasing")
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        registry = self.registry
        if not registry.enabled:
            return
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with registry._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
                self._series[key] = series
            series.counts[index] += 1
            series.total += value
            series.count += 1

    def count(self, **labels) -> int:
        series = self._series.get(self._key(labels))
        return series.count if series is not None else 0

    def total(self, **labels) -> float:
        series = self._series.get(self._key(labels))
        return series.total if series is not None else 0.0

    def mean(self, **labels) -> float:
        series = self._series.get(self._key(labels))
        if series is None or not series.count:
            return 0.0
        return series.total / series.count

    def quantile(self, q: float, **labels) -> float:
        """Estimate the q-quantile by interpolating within its bucket.

        Exact to bucket resolution (±1 log-2 step): the observation's
        bucket is known, its position inside the bucket is interpolated
        linearly.  Values beyond the last bound clamp to that bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        series = self._series.get(self._key(labels))
        if series is None or not series.count:
            return 0.0
        rank = q * series.count
        cumulative = 0.0
        for index, bucket_count in enumerate(series.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lo = self.buckets[index - 1] if index > 0 else 0.0
                hi = (self.buckets[index] if index < len(self.buckets)
                      else self.buckets[-1])
                fraction = (rank - cumulative) / bucket_count
                return lo + min(max(fraction, 0.0), 1.0) * (hi - lo)
            cumulative += bucket_count
        return self.buckets[-1]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe, mergeable home of every instrument.

    ``enabled=False`` builds a registry whose instruments drop every
    record on the floor after one branch — the disabled server's
    near-zero-cost observability mode.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.RLock()
        self._instruments: dict[str, _Instrument] = {}

    # -- instrument access (get-or-create, idempotent) -----------------
    def _get_or_create(self, cls, name: str, help: str, labelnames: tuple,
                       **kwargs) -> _Instrument:
        instrument = self._instruments.get(name)
        if instrument is not None:
            if instrument.kind != cls.kind:
                raise TypeError(
                    f"{name} is registered as a {instrument.kind}, "
                    f"not a {cls.kind}")
            return instrument
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(self, name, help, tuple(labelnames),
                                 **kwargs)
                self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "",
                labelnames: tuple = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "", labelnames: tuple = (),
                  buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def instruments(self) -> list:
        """Every registered instrument, sorted by name."""
        with self._lock:
            return [self._instruments[name]
                    for name in sorted(self._instruments)]

    # -- snapshot / merge / drain (the cross-process protocol) ---------
    def snapshot(self) -> dict:
        """Plain-data (picklable, JSON-safe) copy of every series."""
        out: dict = {}
        with self._lock:
            for name, instrument in self._instruments.items():
                entry: dict = {
                    "kind": instrument.kind,
                    "help": instrument.help,
                    "labelnames": list(instrument.labelnames),
                    "series": [],
                }
                if instrument.kind == "histogram":
                    entry["buckets"] = list(instrument.buckets)
                    for key, series in instrument._series.items():
                        entry["series"].append([list(key), {
                            "counts": list(series.counts),
                            "sum": series.total,
                            "count": series.count,
                        }])
                else:
                    for key, value in instrument._series.items():
                        entry["series"].append([list(key), value])
                out[name] = entry
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` in: counts add, gauges take latest.

        Histogram merging is exact because every snapshot produced by
        this module uses explicit bucket bounds — a layout mismatch is
        an error, never a silent re-bucketing.
        """
        if not self.enabled or not snapshot:
            return
        for name, entry in snapshot.items():
            kind = entry.get("kind", "counter")
            cls = _KINDS[kind]
            if kind == "histogram":
                instrument = self._get_or_create(
                    cls, name, entry.get("help", ""),
                    tuple(entry.get("labelnames", ())),
                    buckets=tuple(entry["buckets"]))
                if list(instrument.buckets) != list(entry["buckets"]):
                    raise ValueError(
                        f"{name}: bucket layout mismatch — cannot merge")
            else:
                instrument = self._get_or_create(
                    cls, name, entry.get("help", ""),
                    tuple(entry.get("labelnames", ())))
            with self._lock:
                for key_list, value in entry["series"]:
                    key = tuple(key_list)
                    if kind == "histogram":
                        series = instrument._series.get(key)
                        if series is None:
                            series = _HistogramSeries(
                                len(instrument.buckets))
                            instrument._series[key] = series
                        for i, count in enumerate(value["counts"]):
                            series.counts[i] += count
                        series.total += value["sum"]
                        series.count += value["count"]
                    elif kind == "counter":
                        instrument._series[key] = (
                            instrument._series.get(key, 0.0) + value)
                    else:  # gauge: last write wins
                        instrument._series[key] = value
        return

    def drain(self) -> dict:
        """Snapshot every series, then zero them (instruments stay).

        The worker-pool protocol: each task drains the worker-process
        registry and ships the delta home with its result, so host-side
        totals stay exact however tasks were distributed.  Returns ``{}``
        when nothing was recorded, keeping the common case cheap to ship.
        """
        with self._lock:
            if not any(instrument._series
                       for instrument in self._instruments.values()):
                return {}
            snapshot = self.snapshot()
            for instrument in self._instruments.values():
                instrument._series.clear()
        return snapshot

    def reset(self) -> None:
        """Drop every instrument and series (test/worker-init hygiene)."""
        with self._lock:
            self._instruments.clear()


# ----------------------------------------------------------------------
# Ambient registry: one process-global default, thread-local override.
# ----------------------------------------------------------------------
_GLOBAL = MetricsRegistry()
_SCOPE = threading.local()


def get_registry() -> MetricsRegistry:
    """The ambient registry: the scoped override if active, else global."""
    scoped = getattr(_SCOPE, "registry", None)
    return scoped if scoped is not None else _GLOBAL


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the previous one."""
    global _GLOBAL
    previous, _GLOBAL = _GLOBAL, registry
    return previous


@contextmanager
def scoped_registry(registry: MetricsRegistry):
    """Route :func:`get_registry` to ``registry`` inside the block.

    Thread-local, so concurrent servers with private registries never
    cross-record.  Nested scopes restore correctly.
    """
    previous = getattr(_SCOPE, "registry", None)
    _SCOPE.registry = registry
    try:
        yield registry
    finally:
        _SCOPE.registry = previous


def reset_worker_state() -> None:
    """Worker-process init hygiene: clear scope + inherited series.

    A forked worker inherits a copy of the parent's global registry (and
    possibly a thread-local scope); without this reset its first
    :meth:`~MetricsRegistry.drain` would ship the parent's accumulated
    history home and double-count it.
    """
    _SCOPE.registry = None
    _GLOBAL.reset()
