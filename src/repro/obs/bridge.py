"""Bridge collectors: legacy ledgers re-expressed as registry instruments.

The serving stack predates the registry and keeps its own typed ledgers —
:class:`~repro.serving.ServerStats` (server + per-shard counters),
:class:`~repro.serving.TenantStats` (per-tenant QoS), and the per-session
Augmenter :class:`~repro.cache.stats.CacheStats`.  Those surfaces stay
exactly as they are (tests and callers read them as views); this module
*mirrors* them into registry counters and gauges at scrape time, so one
Prometheus exposition covers every layer without double bookkeeping in
any hot path.

Everything here is duck-typed on the stats dataclasses' attributes, so
the obs package never imports the serving package (which imports obs) —
the dependency points one way.
"""

from __future__ import annotations

from .exposition import render
from .metrics import MetricsRegistry, get_registry

__all__ = ["export_stats", "export_sessions", "collect", "scrape"]


def export_stats(stats, registry: MetricsRegistry) -> None:
    """Mirror a ``ServerStats`` snapshot (shards + tenants included)."""
    counter, gauge = registry.counter, registry.gauge
    counter("repro_server_queries_total",
            "Queries answered by the server.").set(stats.queries)
    counter("repro_server_batches_total",
            "Micro-batches the server has processed.").set(stats.batches)
    counter("repro_server_encoded_subgraphs_total",
            "Subgraphs encoded across all micro-batches."
            ).set(stats.encoded_subgraphs)
    counter("repro_sessions_opened_total",
            "Sessions opened over the server lifetime."
            ).set(stats.sessions_opened)
    counter("repro_sessions_evicted_total",
            "Sessions evicted by the LRU bound.").set(stats.sessions_evicted)
    counter("repro_sessions_expired_total",
            "Sessions expired by the idle TTL.").set(stats.sessions_expired)
    gauge("repro_graph_version",
          "Current graph epoch (live-update counter)."
          ).set(stats.graph_version)
    counter("repro_graph_updates_total",
            "Live graph mutation batches applied.").set(stats.graph_updates)
    counter("repro_sessions_invalidated_total",
            "Sessions marked stale by a graph mutation."
            ).set(stats.sessions_invalidated)
    counter("repro_cache_stale_evictions_total",
            "Augmenter cache entries dropped as graph-stale."
            ).set(stats.stale_evictions)

    shard_labels = ("shard",)
    requests = counter("repro_shard_requests_total",
                       "Datapoints routed to each shard.", shard_labels)
    halo = counter("repro_shard_halo_fetches_total",
                   "Cross-shard ghost-row fetches per shard.", shard_labels)
    busy = counter("repro_shard_worker_busy_seconds_total",
                   "Worker seconds spent on each shard's tasks.",
                   shard_labels)
    for counters in stats.shards:
        shard = str(counters.shard_id)
        requests.set(counters.requests, shard=shard)
        halo.set(counters.halo_fetches, shard=shard)
        busy.set(counters.worker_busy_s, shard=shard)

    tenant_labels = ("tenant", "priority")
    submitted = counter("repro_tenant_submitted_total",
                        "Requests each tenant submitted.", tenant_labels)
    admitted = counter("repro_tenant_admitted_total",
                       "Requests each tenant had admitted.", tenant_labels)
    completed = counter("repro_tenant_completed_total",
                        "Requests completed per tenant.", tenant_labels)
    errors = counter("repro_tenant_errors_total",
                     "Admitted requests that failed, per tenant.",
                     tenant_labels)
    shed = counter("repro_tenant_shed_total",
                   "Requests shed at admission, per tenant and reason.",
                   ("tenant", "priority", "reason"))
    misses = counter("repro_tenant_deadline_misses_total",
                     "Completed requests that missed their deadline.",
                     tenant_labels)
    qps = gauge("repro_tenant_qps",
                "Completed-request throughput per tenant.", tenant_labels)
    wait_p50 = gauge("repro_tenant_wait_p50_seconds",
                     "Median queue wait per tenant (recent window).",
                     tenant_labels)
    wait_p95 = gauge("repro_tenant_wait_p95_seconds",
                     "p95 queue wait per tenant (recent window).",
                     tenant_labels)
    for tenant in stats.tenants:
        labels = dict(tenant=tenant.tenant_id,
                      priority=tenant.priority.name.lower())
        submitted.set(tenant.submitted, **labels)
        admitted.set(tenant.admitted, **labels)
        completed.set(tenant.completed, **labels)
        errors.set(tenant.errors, **labels)
        misses.set(tenant.deadline_misses, **labels)
        qps.set(tenant.qps, **labels)
        wait_p50.set(tenant.wait_p50_s, **labels)
        wait_p95.set(tenant.wait_p95_s, **labels)
        shed.set(tenant.shed_queue_full, reason="queue-full", **labels)
        shed.set(tenant.shed_rate_limited, reason="rate-limited", **labels)
        shed.set(tenant.shed_quota, reason="quota-exhausted", **labels)


def export_sessions(server, registry: MetricsRegistry) -> None:
    """Aggregate the live sessions' ``CacheStats`` into the registry."""
    gauge, counter = registry.gauge, registry.counter
    states = server.sessions.states()
    gauge("repro_sessions_live",
          "Sessions currently resident in the store.").set(len(states))
    totals = dict(hits=0, misses=0, insertions=0, evictions=0, size=0,
                  capacity=0)
    for state in states:
        stats = state.cache_stats()
        totals["hits"] += stats.hits
        totals["misses"] += stats.misses
        totals["insertions"] += stats.insertions
        totals["evictions"] += stats.evictions
        totals["size"] += stats.size
        totals["capacity"] += stats.capacity
    counter("repro_session_cache_hits_total",
            "Augmenter cache hits across live sessions."
            ).set(totals["hits"])
    counter("repro_session_cache_misses_total",
            "Augmenter cache misses across live sessions."
            ).set(totals["misses"])
    counter("repro_session_cache_insertions_total",
            "Augmenter cache insertions across live sessions."
            ).set(totals["insertions"])
    counter("repro_session_cache_evictions_total",
            "Augmenter capacity evictions across live sessions."
            ).set(totals["evictions"])
    gauge("repro_session_cache_entries",
          "Cached prompts resident across live sessions."
          ).set(totals["size"])
    lookups = totals["hits"] + totals["misses"]
    gauge("repro_session_cache_hit_rate",
          "Aggregate Augmenter hit rate across live sessions."
          ).set(totals["hits"] / lookups if lookups else 0.0)


def collect(target, registry: MetricsRegistry | None = None
            ) -> MetricsRegistry:
    """Refresh the bridge mirrors for a server or gateway.

    ``target`` is a :class:`~repro.serving.PromptServer` or a
    :class:`~repro.serving.ServingGateway` (detected by its ``server``
    attribute).  The default registry is the target's own (``.obs``), so
    live hot-path instruments and bridged ledgers land in one scrape.
    """
    server = getattr(target, "server", target)
    if registry is None:
        registry = getattr(target, "obs", None) or get_registry()
    export_stats(target.stats, registry)
    export_sessions(server, registry)
    return registry


def scrape(target, registry: MetricsRegistry | None = None) -> str:
    """One-call exposition: refresh the bridges, render the registry."""
    return render(collect(target, registry))
