"""The attributed, relation-typed graph container ``G = (V, E, R)``.

Matches Definition 1 of the paper: nodes ``V``, edges ``E`` and relations
``R``, where each edge ``e = (u, r, v)`` carries a relation type.  Node
features drive the GNN encoders; node labels support node-classification
episodes (arXiv-style) and edge relation types double as edge-classification
labels (FB15K-237 / NELL / ConceptNet-style).
"""

from __future__ import annotations

import numpy as np

from .csr import CSRAdjacency

__all__ = ["Graph"]


class Graph:
    """Immutable attributed multigraph with typed edges.

    Parameters
    ----------
    num_nodes:
        Number of nodes ``|V|``.
    src, dst:
        Edge endpoint arrays of equal length ``|E|``.
    rel:
        Relation type per edge (``|E|``, defaults to all-zero = untyped).
    node_features:
        Dense feature matrix ``(|V|, d)``; required by the encoders.
    node_labels:
        Optional integer class per node (node-classification datasets).
    num_relations:
        Size of the relation vocabulary ``|R|``; inferred when omitted.
    relation_features:
        Optional dense feature per relation ``(|R|, d_rel)``.  Like the
        BERT/OGB text embeddings of the paper's KGs, these live in a shared
        semantic space so a model pre-trained on one KG can consume another
        KG's relations without a per-dataset embedding table.
    name:
        Human-readable dataset name.
    """

    def __init__(
        self,
        num_nodes: int,
        src: np.ndarray,
        dst: np.ndarray,
        rel: np.ndarray | None = None,
        node_features: np.ndarray | None = None,
        node_labels: np.ndarray | None = None,
        num_relations: int | None = None,
        relation_features: np.ndarray | None = None,
        name: str = "graph",
    ):
        if num_nodes <= 0:
            raise ValueError("graph must have at least one node")
        self.num_nodes = int(num_nodes)
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        if self.src.shape != self.dst.shape:
            raise ValueError("src/dst length mismatch")
        if rel is None:
            rel = np.zeros_like(self.src)
        self.rel = np.asarray(rel, dtype=np.int64)
        if self.rel.shape != self.src.shape:
            raise ValueError("rel length must equal the number of edges")
        if self.src.size and (self.src.min() < 0 or self.src.max() >= num_nodes
                              or self.dst.min() < 0 or self.dst.max() >= num_nodes):
            raise ValueError("edge endpoint out of range")
        if num_relations is None:
            num_relations = int(self.rel.max()) + 1 if self.rel.size else 1
        if self.rel.size and self.rel.max() >= num_relations:
            raise ValueError("relation id exceeds num_relations")
        self.num_relations = int(num_relations)

        if node_features is None:
            node_features = np.zeros((num_nodes, 1), dtype=np.float64)
        self.node_features = np.asarray(node_features, dtype=np.float64)
        if self.node_features.shape[0] != num_nodes:
            raise ValueError("node_features first dim must equal num_nodes")

        self.relation_features = None
        if relation_features is not None:
            self.relation_features = np.asarray(relation_features,
                                                dtype=np.float64)
            if self.relation_features.shape[0] != self.num_relations:
                raise ValueError(
                    "relation_features first dim must equal num_relations")

        self.node_labels = None
        if node_labels is not None:
            self.node_labels = np.asarray(node_labels, dtype=np.int64)
            if self.node_labels.shape != (num_nodes,):
                raise ValueError("node_labels must be (num_nodes,)")

        self.name = name
        self._adj: CSRAdjacency | None = None
        self._undirected_adj: CSRAdjacency | None = None

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    @property
    def feature_dim(self) -> int:
        return int(self.node_features.shape[1])

    @property
    def num_node_classes(self) -> int:
        if self.node_labels is None:
            return 0
        return int(self.node_labels.max()) + 1

    @property
    def adjacency(self) -> CSRAdjacency:
        """Directed out-adjacency (built lazily, cached)."""
        if self._adj is None:
            self._adj = CSRAdjacency(self.num_nodes, self.src, self.dst)
        return self._adj

    @property
    def undirected_adjacency(self) -> CSRAdjacency:
        """Symmetrised adjacency used by neighbourhood samplers.

        Edge ids in this view index into the *doubled* edge list; ids below
        ``num_edges`` are forward edges, ids above are their reverses — use
        :meth:`edge_id_to_original` to map back.
        """
        if self._undirected_adj is None:
            both_src = np.concatenate([self.src, self.dst])
            both_dst = np.concatenate([self.dst, self.src])
            self._undirected_adj = CSRAdjacency(self.num_nodes, both_src, both_dst)
        return self._undirected_adj

    def edge_id_to_original(self, edge_id: int | np.ndarray):
        """Map an undirected-view edge id back to the original edge id."""
        return np.asarray(edge_id) % self.num_edges

    def neighbors(self, node: int) -> np.ndarray:
        """Undirected neighbours of ``node`` (paper's ``Neighbor`` function)."""
        return self.undirected_adjacency.neighbors(node)

    def degree(self, node: int | None = None):
        """Undirected degree."""
        return self.undirected_adjacency.degree(node)

    # ------------------------------------------------------------------
    def edge_endpoints(self, edge_id: int) -> tuple[int, int, int]:
        """Return ``(u, r, v)`` for an edge id."""
        return int(self.src[edge_id]), int(self.rel[edge_id]), int(self.dst[edge_id])

    def edges_between(self, u: int, v: int) -> np.ndarray:
        """Ids of directed edges from ``u`` to ``v``."""
        dsts, eids = self.adjacency.neighbor_edges(u)
        return eids[dsts == v]

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, relations={self.num_relations}, "
            f"feature_dim={self.feature_dim})"
        )
