"""The attributed, relation-typed graph container ``G = (V, E, R)``.

Matches Definition 1 of the paper: nodes ``V``, edges ``E`` and relations
``R``, where each edge ``e = (u, r, v)`` carries a relation type.  Node
features drive the GNN encoders; node labels support node-classification
episodes (arXiv-style) and edge relation types double as edge-classification
labels (FB15K-237 / NELL / ConceptNet-style).

Live updates: the container is immutable until the first write.
:meth:`Graph.apply_updates` (or the granular :meth:`add_nodes` /
:meth:`add_edges` / :meth:`remove_edges`) mutates in place through
:class:`~repro.graph.delta.DeltaAdjacency` overlays, keeping every read —
both samplers, both engines, subgraph induction — bit-identical to a
from-scratch rebuild over the live edge list.  Edge ids are append-only
and stable: removed edges keep their array positions (tombstoned, never
served), so datapoints and datasets referencing edges by id stay valid
across mutations and :meth:`compact`.  ``version`` is the epoch counter
caches key their invalidation on.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRAdjacency
from .delta import AppliedUpdate, DeltaAdjacency, GraphUpdate

__all__ = ["Graph"]

_EMPTY = np.empty(0, dtype=np.int64)


class Graph:
    """Attributed multigraph with typed edges (mutable via delta overlays).

    Parameters
    ----------
    num_nodes:
        Number of nodes ``|V|``.
    src, dst:
        Edge endpoint arrays of equal length ``|E|``.
    rel:
        Relation type per edge (``|E|``, defaults to all-zero = untyped).
    node_features:
        Dense feature matrix ``(|V|, d)``; required by the encoders.
    node_labels:
        Optional integer class per node (node-classification datasets).
    num_relations:
        Size of the relation vocabulary ``|R|``; inferred when omitted.
    relation_features:
        Optional dense feature per relation ``(|R|, d_rel)``.  Like the
        BERT/OGB text embeddings of the paper's KGs, these live in a shared
        semantic space so a model pre-trained on one KG can consume another
        KG's relations without a per-dataset embedding table.
    name:
        Human-readable dataset name.
    """

    def __init__(
        self,
        num_nodes: int,
        src: np.ndarray,
        dst: np.ndarray,
        rel: np.ndarray | None = None,
        node_features: np.ndarray | None = None,
        node_labels: np.ndarray | None = None,
        num_relations: int | None = None,
        relation_features: np.ndarray | None = None,
        name: str = "graph",
    ):
        if num_nodes <= 0:
            raise ValueError("graph must have at least one node")
        self.num_nodes = int(num_nodes)
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        if self.src.shape != self.dst.shape:
            raise ValueError("src/dst length mismatch")
        if rel is None:
            rel = np.zeros_like(self.src)
        self.rel = np.asarray(rel, dtype=np.int64)
        if self.rel.shape != self.src.shape:
            raise ValueError("rel length must equal the number of edges")
        if self.src.size and (self.src.min() < 0 or self.src.max() >= num_nodes
                              or self.dst.min() < 0 or self.dst.max() >= num_nodes):
            raise ValueError("edge endpoint out of range")
        if num_relations is None:
            num_relations = int(self.rel.max()) + 1 if self.rel.size else 1
        if self.rel.size and self.rel.max() >= num_relations:
            raise ValueError("relation id exceeds num_relations")
        self.num_relations = int(num_relations)

        if node_features is None:
            node_features = np.zeros((num_nodes, 1), dtype=np.float64)
        self.node_features = np.asarray(node_features, dtype=np.float64)
        if self.node_features.shape[0] != num_nodes:
            raise ValueError("node_features first dim must equal num_nodes")

        self.relation_features = None
        if relation_features is not None:
            self.relation_features = np.asarray(relation_features,
                                                dtype=np.float64)
            if self.relation_features.shape[0] != self.num_relations:
                raise ValueError(
                    "relation_features first dim must equal num_relations")

        self.node_labels = None
        if node_labels is not None:
            self.node_labels = np.asarray(node_labels, dtype=np.int64)
            if self.node_labels.shape != (num_nodes,):
                raise ValueError("node_labels must be (num_nodes,)")

        self.name = name
        self._adj: CSRAdjacency | DeltaAdjacency | None = None
        self._undirected_adj: CSRAdjacency | DeltaAdjacency | None = None
        #: Epoch counter: bumped by every mutation; caches that derive
        #: from graph reads invalidate against it.
        self.version = 0
        #: Liveness per edge-id (``None`` = everything alive).  Removed
        #: edges keep their array slots so external ids stay stable.
        self.edge_alive: np.ndarray | None = None
        #: Auto-compaction trigger: once the adjacency overlay (deltas +
        #: tombstones) exceeds this fraction of the live slots, the next
        #: mutation rebuilds clean CSR bases.  ``None`` = manual only.
        self.compact_threshold: float | None = None
        #: Tiered-compaction knobs, forwarded to every overlay this graph
        #: builds (including rebuilds after :meth:`compact`): read-hot
        #: dirty rows are re-materialised into contiguous side storage
        #: after ``tier_promote_after`` reads so frontier gathers stay
        #: vectorised; ``tier_enabled=False`` pins the pure delta tier.
        self.tier_enabled = True
        self.tier_promote_after = 2
        self._mutated = False
        self._compactions = 0

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Size of the edge-id space (live edges plus tombstones)."""
        return int(self.src.shape[0])

    @property
    def num_live_edges(self) -> int:
        """Edges that are actually present (excludes removed ones)."""
        if self.edge_alive is None:
            return self.num_edges
        return int(self.edge_alive.sum())

    @property
    def feature_dim(self) -> int:
        return int(self.node_features.shape[1])

    @property
    def num_node_classes(self) -> int:
        if self.node_labels is None:
            return 0
        return int(self.node_labels.max()) + 1

    @property
    def adjacency(self) -> CSRAdjacency | DeltaAdjacency:
        """Directed out-adjacency (built lazily, cached).

        A plain CSR until the first mutation; a
        :class:`~repro.graph.delta.DeltaAdjacency` after — same query
        surface either way (``neighbor_edges`` returns stable edge ids).
        """
        if self._adj is None:
            if self._mutated:
                src, dst, _, eids = self.live_edges()
                self._adj = self._tuned(DeltaAdjacency.directed(
                    self.num_nodes, src, dst, eids, id_space=self.num_edges))
            else:
                self._adj = CSRAdjacency(self.num_nodes, self.src, self.dst)
        return self._adj

    @property
    def undirected_adjacency(self) -> CSRAdjacency | DeltaAdjacency:
        """Symmetrised adjacency used by neighbourhood samplers.

        On the immutable path, edge ids in this view index into the
        *doubled* edge list; ids below ``num_edges`` are forward edges,
        ids above are their reverses — use :meth:`edge_id_to_original` to
        map back.  After the first mutation this becomes a two-lane
        :class:`~repro.graph.delta.DeltaAdjacency` whose rows stay
        bit-identical to a from-scratch rebuild of the live edge list.
        """
        if self._undirected_adj is None:
            if self._mutated:
                src, dst, _, eids = self.live_edges()
                self._undirected_adj = self._tuned(DeltaAdjacency.undirected(
                    self.num_nodes, src, dst, eids, id_space=self.num_edges))
            else:
                both_src = np.concatenate([self.src, self.dst])
                both_dst = np.concatenate([self.dst, self.src])
                self._undirected_adj = CSRAdjacency(self.num_nodes, both_src,
                                                    both_dst)
        return self._undirected_adj

    def edge_id_to_original(self, edge_id: int | np.ndarray):
        """Map an undirected-view edge id back to the original edge id.

        Only meaningful for the immutable doubled-list view; a promoted
        (mutated) graph's undirected overlay already reports external
        ids, so the mapping is the identity there.
        """
        if self._mutated:
            return np.asarray(edge_id)
        return np.asarray(edge_id) % self.num_edges

    def neighbors(self, node: int) -> np.ndarray:
        """Undirected neighbours of ``node`` (paper's ``Neighbor`` function)."""
        return self.undirected_adjacency.neighbors(node)

    def degree(self, node: int | None = None):
        """Undirected degree."""
        return self.undirected_adjacency.degree(node)

    # ------------------------------------------------------------------
    def edge_endpoints(self, edge_id: int) -> tuple[int, int, int]:
        """Return ``(u, r, v)`` for an edge id."""
        return int(self.src[edge_id]), int(self.rel[edge_id]), int(self.dst[edge_id])

    def edges_between(self, u: int, v: int) -> np.ndarray:
        """Ids of directed edges from ``u`` to ``v``."""
        dsts, eids = self.adjacency.neighbor_edges(u)
        return eids[dsts == v]

    # ------------------------------------------------------------------
    # Live mutations (delta-overlay write path)
    # ------------------------------------------------------------------
    def live_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray]:
        """``(src, dst, rel, edge_ids)`` of the live edges, canonical order.

        Canonical order — original positions with removals filtered out,
        appended edges at the tail — is exactly the edge list a
        from-scratch rebuild consumes, which is why overlay reads and
        rebuild reads are bit-identical.
        """
        eids = np.arange(self.num_edges, dtype=np.int64)
        if self.edge_alive is None:
            return self.src, self.dst, self.rel, eids
        keep = self.edge_alive
        return self.src[keep], self.dst[keep], self.rel[keep], eids[keep]

    def _tuned(self, adj: DeltaAdjacency) -> DeltaAdjacency:
        """Forward the graph-level tiering knobs to a fresh overlay."""
        adj.tier_enabled = self.tier_enabled
        adj.promote_after = self.tier_promote_after
        return adj

    def _promote_overlays(self) -> None:
        """Wrap plain CSR caches into delta overlays before the first write.

        Wrapping reuses the built CSR as the overlay base (no re-sort).
        Unbuilt adjacencies stay ``None`` — their lazy build reads
        :meth:`live_edges` and therefore starts as a clean overlay.
        """
        if self._mutated:
            return
        self._mutated = True
        if isinstance(self._adj, CSRAdjacency):
            self._adj = self._tuned(
                DeltaAdjacency.wrap_directed(self._adj, self.num_edges))
        if isinstance(self._undirected_adj, CSRAdjacency):
            self._undirected_adj = self._tuned(DeltaAdjacency.wrap_undirected(
                self._undirected_adj, self.src, self.num_edges))

    def add_nodes(self, node_features: np.ndarray,
                  node_labels: np.ndarray | None = None) -> np.ndarray:
        """Append nodes; returns their ids (contiguous at the top).

        ``node_features`` must be ``(count, feature_dim)``.  When the
        graph carries node labels, new labels default to class 0 unless
        given.  New nodes start isolated — wire them with
        :meth:`add_edges`.
        """
        features = np.asarray(node_features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.feature_dim:
            raise ValueError("node_features must be (count, feature_dim)")
        count = int(features.shape[0])
        if count == 0:
            return _EMPTY
        self._promote_overlays()
        first = self.num_nodes
        self.num_nodes += count
        self.node_features = np.concatenate([self.node_features, features])
        if self.node_labels is not None:
            if node_labels is None:
                labels = np.zeros(count, dtype=np.int64)
            else:
                labels = np.asarray(node_labels, dtype=np.int64).reshape(-1)
                if labels.shape != (count,):
                    raise ValueError("node_labels must be (count,)")
            self.node_labels = np.concatenate([self.node_labels, labels])
        for adj in (self._adj, self._undirected_adj):
            if isinstance(adj, DeltaAdjacency):
                adj.grow(count)
        self.version += 1
        return np.arange(first, self.num_nodes, dtype=np.int64)

    def add_edges(self, src, dst, rel=None) -> np.ndarray:
        """Append live edges; returns their (stable) edge ids."""
        src = np.asarray(src, dtype=np.int64).reshape(-1)
        dst = np.asarray(dst, dtype=np.int64).reshape(-1)
        if src.shape != dst.shape:
            raise ValueError("src/dst length mismatch")
        if src.size == 0:
            return _EMPTY
        if (src.min() < 0 or src.max() >= self.num_nodes
                or dst.min() < 0 or dst.max() >= self.num_nodes):
            raise ValueError("edge endpoint out of range")
        if rel is None:
            rel = np.zeros(src.size, dtype=np.int64)
        else:
            rel = np.asarray(rel, dtype=np.int64).reshape(-1)
            if rel.shape != src.shape:
                raise ValueError("rel length must equal the number of edges")
            if rel.size and (rel.min() < 0 or rel.max() >= self.num_relations):
                raise ValueError("relation id exceeds num_relations")
        self._promote_overlays()
        first = self.num_edges
        eids = np.arange(first, first + src.size, dtype=np.int64)
        self.src = np.concatenate([self.src, src])
        self.dst = np.concatenate([self.dst, dst])
        self.rel = np.concatenate([self.rel, rel])
        if self.edge_alive is not None:
            self.edge_alive = np.concatenate(
                [self.edge_alive, np.ones(src.size, dtype=bool)])
        directed = self._adj if isinstance(self._adj, DeltaAdjacency) else None
        undirected = (self._undirected_adj
                      if isinstance(self._undirected_adj, DeltaAdjacency)
                      else None)
        for eid, u, v in zip(eids.tolist(), src.tolist(), dst.tolist()):
            if directed is not None:
                directed.append_slot(u, v, eid)
            if undirected is not None:
                undirected.append_slot(u, v, eid, lane=0)
                undirected.append_slot(v, u, eid, lane=1)
        self.version += 1
        self._auto_compact()
        return eids

    def remove_edges(self, edge_ids) -> None:
        """Tombstone live edges by id (ids stay allocated, never served)."""
        ids = np.asarray(edge_ids, dtype=np.int64).reshape(-1)
        if ids.size == 0:
            return
        if ids.min() < 0 or ids.max() >= self.num_edges:
            raise ValueError("edge id out of range")
        if np.unique(ids).size != ids.size:
            raise ValueError("duplicate edge id in removal batch")
        if self.edge_alive is not None and not self.edge_alive[ids].all():
            raise ValueError("edge already removed")
        self._promote_overlays()
        if self.edge_alive is None:
            self.edge_alive = np.ones(self.num_edges, dtype=bool)
        self.edge_alive[ids] = False
        directed = self._adj if isinstance(self._adj, DeltaAdjacency) else None
        undirected = (self._undirected_adj
                      if isinstance(self._undirected_adj, DeltaAdjacency)
                      else None)
        for eid in ids.tolist():
            if directed is not None:
                directed.remove_slot(eid)
            if undirected is not None:
                undirected.remove_slot(eid, lane=0)
                undirected.remove_slot(eid, lane=1)
        self.version += 1
        self._auto_compact()

    def apply_updates(self, update: GraphUpdate) -> AppliedUpdate:
        """Apply one mutation batch; returns the invalidation receipt.

        Order: nodes are added first (so new edges may land on them),
        then edges are added, then removals are applied.
        """
        compactions = self._compactions
        new_nodes = _EMPTY
        if update.add_node_features is not None:
            new_nodes = self.add_nodes(update.add_node_features,
                                       update.add_node_labels)
        add_src = np.asarray(update.add_src, dtype=np.int64).reshape(-1)
        add_dst = np.asarray(update.add_dst, dtype=np.int64).reshape(-1)
        new_edges = (self.add_edges(add_src, add_dst, update.add_rel)
                     if add_src.size else _EMPTY)
        removed = np.asarray(update.remove_edges,
                             dtype=np.int64).reshape(-1)
        if removed.size:
            self.remove_edges(removed)
        touched = np.unique(np.concatenate(
            [new_nodes, add_src, add_dst,
             self.src[removed], self.dst[removed]]))
        return AppliedUpdate(
            version=self.version, new_node_ids=new_nodes,
            new_edge_ids=new_edges, removed_edge_ids=removed,
            touched_nodes=touched,
            compacted=self._compactions > compactions)

    def rebuild(self) -> "Graph":
        """A fresh immutable :class:`Graph` over the live edge list.

        The differential reference for every mutation: overlay reads are
        bit-identical to the rebuild's (note the rebuild renumbers edge
        ids — only *content* equality is meaningful across it).  Carries
        all metadata (features, labels, relation features, name).
        """
        src, dst, rel, _ = self.live_edges()
        return Graph(
            self.num_nodes, src.copy(), dst.copy(), rel=rel.copy(),
            node_features=self.node_features.copy(),
            node_labels=None if self.node_labels is None
            else self.node_labels.copy(),
            num_relations=self.num_relations,
            relation_features=None if self.relation_features is None
            else self.relation_features.copy(),
            name=self.name)

    @property
    def overlay_fraction(self) -> float:
        """Largest overlay fraction across the built adjacency views."""
        fractions = [adj.overlay_fraction()
                     for adj in (self._adj, self._undirected_adj)
                     if isinstance(adj, DeltaAdjacency)]
        return max(fractions) if fractions else 0.0

    def _auto_compact(self) -> None:
        threshold = self.compact_threshold
        if threshold is not None and self.overlay_fraction > threshold:
            self.compact()

    def compact(self) -> None:
        """Fold overlays back into clean CSR bases (edge ids unchanged).

        Edge arrays are left as-is — the id space never renumbers — only
        the adjacency structures are rebuilt from :meth:`live_edges`, so
        reads return to the tombstone-free fast paths.
        """
        if not self._mutated:
            return
        src, dst, _, eids = self.live_edges()
        if self._adj is not None:
            self._adj = self._tuned(DeltaAdjacency.directed(
                self.num_nodes, src, dst, eids, id_space=self.num_edges))
        if self._undirected_adj is not None:
            self._undirected_adj = self._tuned(DeltaAdjacency.undirected(
                self.num_nodes, src, dst, eids, id_space=self.num_edges))
        self._compactions += 1

    def __repr__(self) -> str:
        return (
            f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, relations={self.num_relations}, "
            f"feature_dim={self.feature_dim})"
        )
