"""Compressed-sparse-row adjacency for fast neighbourhood queries."""

from __future__ import annotations

import numpy as np

__all__ = ["CSRAdjacency"]


class CSRAdjacency:
    """CSR view over an edge list ``(src, dst)``.

    Stores, for every node ``u``, the contiguous slice of its out-edges:
    destination nodes ``indices[indptr[u]:indptr[u+1]]`` and the ids of the
    original edges ``edge_ids[indptr[u]:indptr[u+1]]`` (so relation types and
    edge labels can be recovered).
    """

    def __init__(self, num_nodes: int, src: np.ndarray, dst: np.ndarray):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if src.size and (src.min() < 0 or src.max() >= num_nodes):
            raise ValueError("src node id out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= num_nodes):
            raise ValueError("dst node id out of range")
        self.num_nodes = int(num_nodes)
        order = np.argsort(src, kind="stable")
        self.indices = dst[order]
        self.edge_ids = order
        counts = np.bincount(src, minlength=num_nodes)
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    def neighbors(self, node: int) -> np.ndarray:
        """Destination nodes of all out-edges of ``node``."""
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def neighbor_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """(destinations, original edge ids) for all out-edges of ``node``."""
        lo, hi = self.indptr[node], self.indptr[node + 1]
        return self.indices[lo:hi], self.edge_ids[lo:hi]

    def degree(self, node: int | None = None):
        """Out-degree of ``node``, or the full degree vector when ``None``."""
        if node is None:
            return np.diff(self.indptr)
        return int(self.indptr[node + 1] - self.indptr[node])
