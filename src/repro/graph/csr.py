"""Compressed-sparse-row adjacency for fast neighbourhood queries."""

from __future__ import annotations

import numpy as np

__all__ = ["CSRAdjacency", "gather_csr_rows"]


def gather_csr_rows(indptr: np.ndarray, data: np.ndarray,
                    rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated ``data`` rows of a CSR; returns ``(values, lengths)``.

    Flat positions: slot i of row r reads ``data[starts[r] + i -
    first_slot_of_r]``; folding the starts and the row firsts into one
    repeat keeps this at three kernels total.  Shared by the adjacency
    gather, the shard partitioner's row extraction, and the sharded
    store's per-shard gathers.
    """
    rows = np.asarray(rows, dtype=np.int64)
    starts = indptr[rows]
    lens = indptr[rows + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=data.dtype), lens
    cum = np.cumsum(lens)
    shifts = np.repeat(starts - cum + lens, lens)
    return data[np.arange(total, dtype=np.int64) + shifts], lens


class CSRAdjacency:
    """CSR view over an edge list ``(src, dst)``.

    Stores, for every node ``u``, the contiguous slice of its out-edges:
    destination nodes ``indices[indptr[u]:indptr[u+1]]`` and the ids of the
    original edges ``edge_ids[indptr[u]:indptr[u+1]]`` (so relation types and
    edge labels can be recovered).
    """

    def __init__(self, num_nodes: int, src: np.ndarray, dst: np.ndarray):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if src.size and (src.min() < 0 or src.max() >= num_nodes):
            raise ValueError("src node id out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= num_nodes):
            raise ValueError("dst node id out of range")
        self.num_nodes = int(num_nodes)
        order = np.argsort(src, kind="stable")
        self.indices = dst[order]
        self.edge_ids = order
        counts = np.bincount(src, minlength=num_nodes)
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._scratch_pool: list[np.ndarray] = []

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    def neighbors(self, node: int) -> np.ndarray:
        """Destination nodes of all out-edges of ``node``."""
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def neighbor_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """(destinations, original edge ids) for all out-edges of ``node``."""
        lo, hi = self.indptr[node], self.indptr[node + 1]
        return self.indices[lo:hi], self.edge_ids[lo:hi]

    def degree(self, node: int | None = None):
        """Out-degree of ``node``, or the full degree vector when ``None``."""
        if node is None:
            return np.diff(self.indptr)
        return int(self.indptr[node + 1] - self.indptr[node])

    # ------------------------------------------------------------------
    # Vectorized frontier operations (the sampler hot path)
    # ------------------------------------------------------------------
    def gather_neighbors(self, frontier: np.ndarray) -> np.ndarray:
        """Concatenated neighbour lists of every ``frontier`` node.

        Equivalent to ``np.concatenate([self.neighbors(u) for u in frontier])``
        — same node order (frontier order, CSR order within each row) — but
        a single fancy-index gather instead of a Python loop.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        if frontier.size == 0:
            return np.empty(0, dtype=np.int64)
        if frontier.size == 1:
            node = frontier[0]
            return self.indices[self.indptr[node]:self.indptr[node + 1]]
        return gather_csr_rows(self.indptr, self.indices, frontier)[0]

    def visited_scratch(self) -> np.ndarray:
        """Check out an all-``False`` boolean scratch of length ``num_nodes``.

        Scratches live in a free-list so per-query samplers avoid an O(|V|)
        allocation per call: the common single-owner case keeps reusing one
        mask, while nested or concurrent borrowers each get their own mask
        instead of corrupting a shared one.  The borrower MUST reset every
        entry it set to ``True`` and hand the mask back via
        :meth:`release_scratch` (samplers do both in a ``finally`` block).
        """
        pool = self._scratch_pool
        if pool:
            return pool.pop()
        return np.zeros(self.num_nodes, dtype=bool)

    def release_scratch(self, mask: np.ndarray) -> None:
        """Return a mask checked out by :meth:`visited_scratch`.

        The mask must be all-``False`` again — releasing a dirty mask would
        poison a later borrower's visited set.
        """
        if mask.size == self.num_nodes:
            self._scratch_pool.append(mask)
