"""Compressed-sparse-row adjacency for fast neighbourhood queries."""

from __future__ import annotations

import numpy as np

__all__ = ["CSRAdjacency"]


class CSRAdjacency:
    """CSR view over an edge list ``(src, dst)``.

    Stores, for every node ``u``, the contiguous slice of its out-edges:
    destination nodes ``indices[indptr[u]:indptr[u+1]]`` and the ids of the
    original edges ``edge_ids[indptr[u]:indptr[u+1]]`` (so relation types and
    edge labels can be recovered).
    """

    def __init__(self, num_nodes: int, src: np.ndarray, dst: np.ndarray):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if src.size and (src.min() < 0 or src.max() >= num_nodes):
            raise ValueError("src node id out of range")
        if dst.size and (dst.min() < 0 or dst.max() >= num_nodes):
            raise ValueError("dst node id out of range")
        self.num_nodes = int(num_nodes)
        order = np.argsort(src, kind="stable")
        self.indices = dst[order]
        self.edge_ids = order
        counts = np.bincount(src, minlength=num_nodes)
        self.indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._scratch_mask: np.ndarray | None = None

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    def neighbors(self, node: int) -> np.ndarray:
        """Destination nodes of all out-edges of ``node``."""
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def neighbor_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """(destinations, original edge ids) for all out-edges of ``node``."""
        lo, hi = self.indptr[node], self.indptr[node + 1]
        return self.indices[lo:hi], self.edge_ids[lo:hi]

    def degree(self, node: int | None = None):
        """Out-degree of ``node``, or the full degree vector when ``None``."""
        if node is None:
            return np.diff(self.indptr)
        return int(self.indptr[node + 1] - self.indptr[node])

    # ------------------------------------------------------------------
    # Vectorized frontier operations (the sampler hot path)
    # ------------------------------------------------------------------
    def gather_neighbors(self, frontier: np.ndarray) -> np.ndarray:
        """Concatenated neighbour lists of every ``frontier`` node.

        Equivalent to ``np.concatenate([self.neighbors(u) for u in frontier])``
        — same node order (frontier order, CSR order within each row) — but
        a single fancy-index gather instead of a Python loop.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        if frontier.size == 0:
            return np.empty(0, dtype=np.int64)
        if frontier.size == 1:
            node = frontier[0]
            return self.indices[self.indptr[node]:self.indptr[node + 1]]
        starts = self.indptr[frontier]
        lens = self.indptr[frontier + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Flat positions: slot i of row r reads indices[starts[r] + i -
        # first_slot_of_r]; folding starts and row firsts into one repeat
        # keeps this at three kernels total.
        cum = np.cumsum(lens)
        shifts = np.repeat(starts - cum + lens, lens)
        return self.indices[np.arange(total, dtype=np.int64) + shifts]

    def visited_scratch(self) -> np.ndarray:
        """All-``False`` boolean scratch of length ``num_nodes``.

        Cached on the adjacency so per-query samplers avoid an O(|V|)
        allocation per call.  The borrower MUST reset every entry it set to
        ``True`` before returning (samplers do this in a ``finally`` block);
        the scratch is not re-entrant, which is fine for the single-threaded
        sampling paths that use it.
        """
        if self._scratch_mask is None or self._scratch_mask.size != self.num_nodes:
            self._scratch_mask = np.zeros(self.num_nodes, dtype=bool)
        return self._scratch_mask
