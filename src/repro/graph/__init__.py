"""Graph substrate: containers, CSR adjacency, samplers and subgraphs."""

from .csr import CSRAdjacency
from .datapoints import Datapoint, EdgeInput, NodeInput
from .delta import AppliedUpdate, DeltaAdjacency, GraphUpdate
from .graph import Graph
from .interop import from_networkx, to_networkx
from .sampling import bfs_neighborhood, random_walk_neighborhood, sample_data_graph
from .subgraph import Subgraph, induced_subgraph

__all__ = [
    "AppliedUpdate",
    "CSRAdjacency",
    "DeltaAdjacency",
    "Graph",
    "GraphUpdate",
    "from_networkx",
    "to_networkx",
    "Subgraph",
    "induced_subgraph",
    "NodeInput",
    "EdgeInput",
    "Datapoint",
    "bfs_neighborhood",
    "random_walk_neighborhood",
    "sample_data_graph",
]
