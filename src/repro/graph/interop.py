"""networkx interoperability for the :class:`~repro.graph.graph.Graph`.

Downstream users usually hold their graphs as ``networkx`` objects; these
converters bridge them into the library (and back for inspection with the
networkx algorithm zoo).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .graph import Graph

__all__ = ["from_networkx", "to_networkx"]


def from_networkx(
    nx_graph: "nx.Graph | nx.DiGraph | nx.MultiDiGraph",
    feature_attr: str = "features",
    label_attr: str = "label",
    relation_attr: str = "relation",
    feature_dim: int | None = None,
    name: str | None = None,
) -> Graph:
    """Convert a networkx graph into a :class:`Graph`.

    Node features are read from ``feature_attr`` (array-like per node;
    nodes missing the attribute get zeros), integer node labels from
    ``label_attr`` (used only when at least one node has it), and integer
    edge relation types from ``relation_attr`` (default 0).  Node ids may
    be arbitrary hashables; they are re-indexed densely in iteration order
    and the mapping is stored in ``graph.nx_node_order``.
    """
    nodes = list(nx_graph.nodes())
    if not nodes:
        raise ValueError("cannot convert an empty networkx graph")
    index_of = {node: i for i, node in enumerate(nodes)}

    # Features: infer dimension from the first node that has them.
    inferred_dim = feature_dim
    for node in nodes:
        value = nx_graph.nodes[node].get(feature_attr)
        if value is not None:
            inferred_dim = inferred_dim or len(np.atleast_1d(value))
            break
    inferred_dim = inferred_dim or 1
    features = np.zeros((len(nodes), inferred_dim))
    for node in nodes:
        value = nx_graph.nodes[node].get(feature_attr)
        if value is not None:
            features[index_of[node]] = np.asarray(value, dtype=np.float64)

    # Labels: only when present somewhere.
    has_labels = any(label_attr in nx_graph.nodes[node] for node in nodes)
    labels = None
    if has_labels:
        labels = np.zeros(len(nodes), dtype=np.int64)
        for node in nodes:
            labels[index_of[node]] = int(
                nx_graph.nodes[node].get(label_attr, 0))

    src, dst, rel = [], [], []
    for edge in nx_graph.edges(data=True):
        u, v, attrs = edge
        src.append(index_of[u])
        dst.append(index_of[v])
        rel.append(int(attrs.get(relation_attr, 0)))

    graph = Graph(
        len(nodes),
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        rel=np.asarray(rel, dtype=np.int64),
        node_features=features,
        node_labels=labels,
        name=name or getattr(nx_graph, "name", None) or "networkx-import",
    )
    graph.nx_node_order = nodes
    return graph


def to_networkx(graph: Graph) -> "nx.MultiDiGraph":
    """Convert a :class:`Graph` to a ``networkx.MultiDiGraph``.

    Node features/labels and edge relations are attached as attributes, so
    the full networkx algorithm suite (components, centralities, …) can be
    used for inspection.
    """
    out = nx.MultiDiGraph(name=graph.name)
    for i in range(graph.num_nodes):
        attrs = {"features": graph.node_features[i]}
        if graph.node_labels is not None:
            attrs["label"] = int(graph.node_labels[i])
        out.add_node(i, **attrs)
    src, dst, rel, _ = graph.live_edges()
    for u, v, r in zip(src.tolist(), dst.tolist(), rel.tolist()):
        out.add_edge(u, v, relation=r)
    return out
