"""Input datapoints ``x_i = (V_i, E_i, R_i)`` for classification tasks.

Definition 2 of the paper: a node-classification input consists of a single
node (``|V_i| = 1``); an edge-classification input is a (head, tail) pair
with one relation (``|V_i| = 2, |E_i| = 1``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NodeInput", "EdgeInput", "Datapoint"]


@dataclass(frozen=True)
class NodeInput:
    """A single node whose label is to be predicted."""

    node: int

    @property
    def nodes(self) -> np.ndarray:
        return np.array([self.node], dtype=np.int64)

    @property
    def relation(self) -> None:
        return None


@dataclass(frozen=True)
class EdgeInput:
    """A (head, tail) pair whose relation label is to be predicted.

    ``relation`` is the ground-truth relation when known (training / prompt
    examples) and ``None`` for queries.
    """

    head: int
    tail: int
    relation: int | None = None

    @property
    def nodes(self) -> np.ndarray:
        return np.array([self.head, self.tail], dtype=np.int64)


Datapoint = NodeInput | EdgeInput
