"""Subgraph views — the "data graphs" of the paper.

A :class:`Subgraph` is the contextualisation ``G_i^D`` of one input datapoint
``x_i`` (a node or an edge): the sampled l-hop neighbourhood re-indexed to
local ids, carrying its node features, relation types, and the local ids of
the input's *center* nodes (one for node tasks, head/tail pair for edge
tasks).  The Prompt Generator attaches learned edge weights ``W_i^D`` to turn
it into the reconstructed data graph ``G'_i^D`` (Eqs. 2–4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .graph import Graph

__all__ = ["Subgraph", "induced_subgraph"]


@dataclass
class Subgraph:
    """An extracted neighbourhood re-indexed to local node ids."""

    nodes: np.ndarray                 # original node ids, shape (n_local,)
    src: np.ndarray                   # local edge sources
    dst: np.ndarray                   # local edge destinations
    rel: np.ndarray                   # relation type per edge
    node_features: np.ndarray         # (n_local, d)
    centers: np.ndarray               # local ids of the input datapoint nodes
    center_relation: int | None = None  # relation of the input edge, if any
    edge_weights: np.ndarray | None = field(default=None)  # W_i^D, set by generator
    rel_features: np.ndarray | None = field(default=None)  # (num_edges, d_rel)

    def __post_init__(self):
        self.nodes = np.asarray(self.nodes, dtype=np.int64)
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        self.rel = np.asarray(self.rel, dtype=np.int64)
        self.centers = np.asarray(self.centers, dtype=np.int64)
        if self.src.shape != self.dst.shape or self.src.shape != self.rel.shape:
            raise ValueError("edge array length mismatch")
        if self.node_features.shape[0] != self.nodes.shape[0]:
            raise ValueError("feature rows must match local node count")
        n = self.nodes.shape[0]
        for arr, label in ((self.src, "src"), (self.dst, "dst"),
                           (self.centers, "centers")):
            if arr.size and (arr.min() < 0 or arr.max() >= n):
                raise ValueError(f"{label} contains out-of-range local ids")
        if (self.rel_features is not None
                and self.rel_features.shape[0] != self.src.shape[0]):
            raise ValueError("rel_features must have one row per edge")

    @property
    def num_nodes(self) -> int:
        return int(self.nodes.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    def with_edge_weights(self, weights: np.ndarray) -> "Subgraph":
        """Return a copy carrying reconstruction weights ``W_i^D`` (Eq. 3)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.num_edges,):
            raise ValueError("weights must be one scalar per edge")
        return Subgraph(
            nodes=self.nodes,
            src=self.src,
            dst=self.dst,
            rel=self.rel,
            node_features=self.node_features,
            centers=self.centers,
            center_relation=self.center_relation,
            edge_weights=weights,
            rel_features=self.rel_features,
        )


def induced_subgraph(
    graph: Graph,
    node_set: np.ndarray,
    centers: np.ndarray,
    center_relation: int | None = None,
) -> Subgraph:
    """Build the subgraph induced by ``node_set`` with both edge directions.

    ``centers`` are original node ids (must be inside ``node_set``); they are
    mapped to local ids.  Each original directed edge inside the node set is
    emitted in both directions so that message passing reaches the head from
    the tail and vice versa.
    """
    node_set = np.asarray(node_set, dtype=np.int64)
    unique_nodes = np.unique(node_set)
    local_of = {int(g): i for i, g in enumerate(unique_nodes)}

    # Walk the CSR rows of the node set instead of scanning the full edge
    # list: subgraphs are tiny (tens of nodes) while source graphs are not.
    adj = graph.adjacency
    src_parts, dst_parts, rel_parts = [], [], []
    for u in unique_nodes:
        dsts, eids = adj.neighbor_edges(int(u))
        if dsts.size == 0:
            continue
        inside = np.isin(dsts, unique_nodes)
        if not inside.any():
            continue
        kept_dsts = dsts[inside]
        kept_eids = eids[inside]
        src_parts.append(np.full(kept_dsts.size, local_of[int(u)],
                                 dtype=np.int64))
        dst_parts.append(np.array([local_of[int(v)] for v in kept_dsts],
                                  dtype=np.int64))
        rel_parts.append(graph.rel[kept_eids])
    if src_parts:
        src_local = np.concatenate(src_parts)
        dst_local = np.concatenate(dst_parts)
        rel = np.concatenate(rel_parts)
    else:
        src_local = np.array([], dtype=np.int64)
        dst_local = np.array([], dtype=np.int64)
        rel = np.array([], dtype=np.int64)

    # Symmetrise for message passing.
    src_sym = np.concatenate([src_local, dst_local])
    dst_sym = np.concatenate([dst_local, src_local])
    rel_sym = np.concatenate([rel, rel])

    centers = np.asarray(centers, dtype=np.int64)
    try:
        centers_local = np.array([local_of[int(c)] for c in centers],
                                 dtype=np.int64)
    except KeyError as exc:
        raise ValueError(f"center node {exc} not inside the node set") from exc

    rel_features = None
    if graph.relation_features is not None:
        rel_features = graph.relation_features[rel_sym]

    return Subgraph(
        nodes=unique_nodes,
        src=src_sym,
        dst=dst_sym,
        rel=rel_sym,
        node_features=graph.node_features[unique_nodes],
        centers=centers_local,
        center_relation=center_relation,
        rel_features=rel_features,
    )
