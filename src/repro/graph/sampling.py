"""Neighbourhood samplers — the prompt-graph generation step (Eq. 1).

Two strategies are provided:

* :func:`bfs_neighborhood` — the exact l-hop neighbourhood
  ``⊕_{i=0..l} Neighbor(V_i, G, i)`` with a node cap;
* :func:`random_walk_neighborhood` — the random-walk variant the paper uses
  for large source graphs (Sec. IV-A1, also Prodigy's sampler): start at a
  seed, absorb its neighbours, hop to a random neighbour, repeat ``l`` times,
  stop early when the subgraph hits the preset node limit.

Each strategy has two *engines* selected by the ``engine`` argument
(``config.sampling_engine`` upstream):

* ``"vectorized"`` (default) — CSR frontier expansion: one
  ``indptr``-slice gather per hop (:meth:`CSRAdjacency.gather_neighbors`)
  followed by boolean-mask membership tests and a canonical (sorted)
  dedup, with vectorized cap-overflow subsampling; random-walk absorption
  is budget-chunked so hub rows cost O(cap), not O(degree).  This is the
  serving hot path.
* ``"legacy"`` — the original per-node Python-set implementation, kept as
  the behavioural reference for the equivalence suite
  (``tests/test_sampling_equivalence.py``).

The two engines are **bit-identical**: for the same graph, seeds, hops, cap
and RNG state they visit nodes in the same order, draw the same random
numbers, and return the same array.  This is what lets
``deterministic_sampling`` serving flip engines without changing a single
prediction.

Cap-overflow policy (both engines): when a BFS hop overflows ``max_nodes``,
a uniform random subset of the *newly discovered* frontier is dropped when
an ``rng`` is supplied.  Without an RNG the truncation is **order-stable**:
the overflow nodes with the largest node ids are dropped, so the result
depends only on the node-id set — never on hash ordering, discovery order,
or the Python build.

:func:`sample_data_graph` wraps either strategy and returns the re-indexed
:class:`~repro.graph.subgraph.Subgraph` for one datapoint.
"""

from __future__ import annotations

import numpy as np

from .datapoints import Datapoint, EdgeInput, NodeInput
from .graph import Graph
from .subgraph import Subgraph, induced_subgraph

__all__ = [
    "bfs_neighborhood",
    "random_walk_neighborhood",
    "sample_data_graph",
    "SAMPLING_ENGINES",
]

SAMPLING_ENGINES = ("vectorized", "legacy")

#: Below this row size the walk absorption uses a scalar scan — numpy
#: kernel dispatch costs more than looping over a handful of ints.
_SCALAR_ABSORB_MAX = 48


def _check_args(num_hops: int, engine: str) -> None:
    if num_hops < 0:
        raise ValueError("num_hops must be non-negative")
    if engine not in SAMPLING_ENGINES:
        raise ValueError(f"unknown sampling engine {engine!r}; "
                         f"use one of {SAMPLING_ENGINES}")


# ----------------------------------------------------------------------
# BFS
# ----------------------------------------------------------------------
def bfs_neighborhood(
    graph: Graph,
    seeds: np.ndarray,
    num_hops: int,
    max_nodes: int = 64,
    rng: np.random.Generator | None = None,
    engine: str = "vectorized",
) -> np.ndarray:
    """Exact l-hop neighbourhood of ``seeds``, truncated at ``max_nodes``.

    When a frontier would overflow the cap, a uniform random subset of it is
    kept (requires ``rng``; falls back to order-stable truncation that drops
    the largest node ids of the overflowing frontier).
    """
    _check_args(num_hops, engine)
    if engine == "legacy":
        return _bfs_legacy(graph, seeds, num_hops, max_nodes, rng)
    return _bfs_vectorized(graph, seeds, num_hops, max_nodes, rng)


def _bfs_legacy(graph, seeds, num_hops, max_nodes, rng) -> np.ndarray:
    """Reference implementation: per-node Python loops over a visited set.

    Every frontier is canonicalised by node id before use, so expansion —
    and in particular which nodes a cap-overflow drop removes — depends
    only on the graph and the RNG state, never on hash ordering, edge
    insertion order, or the Python build.
    """
    seeds = np.asarray(seeds, dtype=np.int64)
    visited: set[int] = set(int(s) for s in seeds)
    frontier = sorted(visited)
    for _ in range(num_hops):
        if len(visited) >= max_nodes:
            break
        discovered: set[int] = set()
        for node in frontier:
            for nb in graph.neighbors(node):
                nb = int(nb)
                if nb not in visited:
                    visited.add(nb)
                    discovered.add(nb)
        next_frontier = sorted(discovered)
        if len(visited) > max_nodes:
            overflow = len(visited) - max_nodes
            if rng is not None:
                drop = rng.choice(len(next_frontier), size=overflow, replace=False)
                dropped = {next_frontier[i] for i in drop}
            else:
                # Order-stable deterministic truncation: drop the largest
                # node ids among the new frontier.
                dropped = set(next_frontier[len(next_frontier) - overflow:])
            visited -= dropped
            next_frontier = [n for n in next_frontier if n not in dropped]
        frontier = next_frontier
        if not frontier:
            break
    return np.array(sorted(visited), dtype=np.int64)


def _first_occurrences(values: np.ndarray) -> np.ndarray:
    """``values`` deduplicated, keeping the first occurrence of each entry."""
    _, first = np.unique(values, return_index=True)
    return values[np.sort(first)]


def _sorted_distinct(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values — ``np.unique`` minus its dispatch overhead.

    The sampler hot loop calls this on tiny (degree-sized) arrays where
    ``np.unique``'s argument handling costs as much as the sort itself.
    """
    if values.size <= 1:
        return values
    ordered = np.sort(values)
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def _bfs_vectorized(graph, seeds, num_hops, max_nodes, rng) -> np.ndarray:
    """CSR frontier expansion; bit-identical to :func:`_bfs_legacy`."""
    adj = graph.undirected_adjacency
    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    visited = adj.visited_scratch()
    visited[frontier] = True
    touched = [frontier]   # everything ever marked True — reset on exit
    collected = [frontier]  # the surviving node set
    count = frontier.size
    try:
        for _ in range(num_hops):
            if count >= max_nodes or frontier.size == 0:
                break
            neighbors = adj.gather_neighbors(frontier)
            fresh = neighbors[~visited[neighbors]]
            # Canonical (sorted-by-id) frontier, matching the legacy
            # engine; a plain value sort, no order bookkeeping.
            new_nodes = _sorted_distinct(fresh)
            visited[new_nodes] = True
            touched.append(new_nodes)
            count += new_nodes.size
            if count > max_nodes:
                overflow = count - max_nodes
                if rng is not None:
                    # Same draw as the legacy engine: choice over canonical
                    # frontier positions.
                    keep = np.ones(new_nodes.size, dtype=bool)
                    keep[rng.choice(new_nodes.size, size=overflow,
                                    replace=False)] = False
                    visited[new_nodes[~keep]] = False
                    new_nodes = new_nodes[keep]
                else:
                    # Order-stable truncation: the frontier is sorted, so
                    # dropping the largest ids is slicing off the tail.
                    visited[new_nodes[new_nodes.size - overflow:]] = False
                    new_nodes = new_nodes[:new_nodes.size - overflow]
                count -= overflow
            collected.append(new_nodes)
            frontier = new_nodes
            if frontier.size == 0:
                break
        return np.sort(np.concatenate(collected))
    finally:
        for part in touched:
            visited[part] = False
        adj.release_scratch(visited)


# ----------------------------------------------------------------------
# Random walk
# ----------------------------------------------------------------------
def random_walk_neighborhood(
    graph: Graph,
    seeds: np.ndarray,
    num_hops: int,
    max_nodes: int = 64,
    rng: np.random.Generator | None = None,
    engine: str = "vectorized",
) -> np.ndarray:
    """Random-walk subgraph sampler from Sec. IV-A1.

    For each seed: add the seed and its neighbours, then walk — pick a random
    neighbour, absorb *its* neighbours (duplicates removed), repeat
    ``num_hops`` times; terminate early once ``max_nodes`` distinct nodes are
    collected.
    """
    _check_args(num_hops, engine)
    if engine == "legacy":
        return _random_walk_legacy(graph, seeds, num_hops, max_nodes, rng)
    return _random_walk_vectorized(graph, seeds, num_hops, max_nodes, rng)


def _random_walk_legacy(graph, seeds, num_hops, max_nodes, rng) -> np.ndarray:
    """Reference implementation: per-neighbour Python loop over a set."""
    rng = rng or np.random.default_rng()
    seeds = np.asarray(seeds, dtype=np.int64)
    visited: set[int] = set(int(s) for s in seeds)

    for seed in seeds:
        current = int(seed)
        for _ in range(num_hops):
            neighbors = graph.neighbors(current)
            for nb in neighbors:
                if len(visited) >= max_nodes:
                    break
                visited.add(int(nb))
            if len(visited) >= max_nodes or neighbors.size == 0:
                break
            current = int(neighbors[rng.integers(neighbors.size)])
    return np.array(sorted(visited), dtype=np.int64)


def _random_walk_vectorized(graph, seeds, num_hops, max_nodes, rng) -> np.ndarray:
    """Multi-seed walk with vectorized neighbour absorption.

    The per-hop RNG draws (which neighbour to hop to) are state-dependent
    and stay sequential — exactly matching the legacy engine's draw order —
    while the O(degree) absorption step becomes mask + dedup + prefix-take
    numpy kernels.
    """
    rng = rng or np.random.default_rng()
    adj = graph.undirected_adjacency
    seeds = np.asarray(seeds, dtype=np.int64)
    start = np.unique(seeds)
    visited = adj.visited_scratch()
    visited[start] = True
    collected = [start]
    count = start.size
    # Hoisted locals: the walk loop runs once per hop per seed and its
    # fixed-cost Python overhead is what the vectorized absorption must
    # stay under.  Row fetches go through the adjacency *surface*
    # (``neighbors``) rather than raw ``indptr``/``indices`` so any
    # CSR-compatible provider — in particular the sharded store — can
    # drive the same engine.
    row_of = adj.neighbors
    draw = rng.integers
    append = collected.append
    # The walk fetches one row at a time, so on a sharded adjacency the
    # seed rows would each pay their own round-trip; providers exposing
    # ``prefetch_rows`` (the sharded store's halo cache) absorb them in
    # one grouped fetch instead.  BFS needs no equivalent — its first
    # hop is already a single fused frontier gather.
    prefetch = getattr(adj, "prefetch_rows", None)
    if prefetch is not None:
        prefetch(start)
    try:
        for seed in seeds:
            current = int(seed)
            for _ in range(num_hops):
                neighbors = row_of(current)
                size = neighbors.size
                if count < max_nodes and size:
                    if size <= _SCALAR_ABSORB_MAX:
                        # Tiny row: a scalar scan beats kernel dispatch.
                        added = []
                        for nb in neighbors.tolist():
                            if count >= max_nodes:
                                break
                            if not visited[nb]:
                                visited[nb] = True
                                added.append(nb)
                                count += 1
                        if added:
                            append(np.array(added, dtype=np.int64))
                    else:
                        # Legacy absorbs one neighbour at a time until the
                        # cap: equivalent to scanning the row in order and
                        # taking unseen distinct neighbours until the
                        # budget runs out.  Chunking bounds the scan by the
                        # budget, so a million-neighbour hub row costs
                        # O(budget), exactly like the legacy early-break.
                        pos = 0
                        while count < max_nodes and pos < size:
                            chunk_len = max(4 * (max_nodes - count), 256)
                            chunk = neighbors[pos:pos + chunk_len]
                            pos += chunk_len
                            fresh = chunk[~visited[chunk]]
                            if not fresh.size:
                                continue
                            new_nodes = _sorted_distinct(fresh)
                            if new_nodes.size > max_nodes - count:
                                # Cap binds mid-chunk: fall back to
                                # discovery order to keep the same prefix
                                # as the legacy engine.
                                new_nodes = _first_occurrences(
                                    fresh)[:max_nodes - count]
                            visited[new_nodes] = True
                            count += new_nodes.size
                            append(new_nodes)
                if count >= max_nodes or size == 0:
                    break
                current = int(neighbors[draw(size)])
        return np.sort(np.concatenate(collected))
    finally:
        for part in collected:
            visited[part] = False
        adj.release_scratch(visited)


# ----------------------------------------------------------------------
# Datapoint wrapper
# ----------------------------------------------------------------------
def sample_data_graph(
    graph: Graph,
    datapoint: Datapoint,
    num_hops: int = 1,
    max_nodes: int = 64,
    rng: np.random.Generator | None = None,
    method: str = "random_walk",
    engine: str = "vectorized",
) -> Subgraph:
    """Contextualise one datapoint into its data graph ``G_i^D`` (Eq. 1)."""
    if method == "random_walk":
        sampler = random_walk_neighborhood
    elif method == "bfs":
        sampler = bfs_neighborhood
    else:
        raise ValueError(f"unknown sampling method {method!r}")

    if isinstance(datapoint, EdgeInput):
        relation = datapoint.relation
    elif isinstance(datapoint, NodeInput):
        relation = None
    else:
        raise TypeError(f"unsupported datapoint type {type(datapoint)!r}")
    node_set = sampler(graph, datapoint.nodes, num_hops, max_nodes, rng,
                       engine=engine)
    return induced_subgraph(graph, node_set, datapoint.nodes,
                            center_relation=relation)
