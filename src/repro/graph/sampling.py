"""Neighbourhood samplers — the prompt-graph generation step (Eq. 1).

Two strategies are provided:

* :func:`bfs_neighborhood` — the exact l-hop neighbourhood
  ``⊕_{i=0..l} Neighbor(V_i, G, i)`` with a node cap;
* :func:`random_walk_neighborhood` — the random-walk variant the paper uses
  for large source graphs (Sec. IV-A1, also Prodigy's sampler): start at a
  seed, absorb its neighbours, hop to a random neighbour, repeat ``l`` times,
  stop early when the subgraph hits the preset node limit.

:func:`sample_data_graph` wraps either strategy and returns the re-indexed
:class:`~repro.graph.subgraph.Subgraph` for one datapoint.
"""

from __future__ import annotations

import numpy as np

from .datapoints import Datapoint, EdgeInput, NodeInput
from .graph import Graph
from .subgraph import Subgraph, induced_subgraph

__all__ = [
    "bfs_neighborhood",
    "random_walk_neighborhood",
    "sample_data_graph",
]


def bfs_neighborhood(
    graph: Graph,
    seeds: np.ndarray,
    num_hops: int,
    max_nodes: int = 64,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Exact l-hop neighbourhood of ``seeds``, truncated at ``max_nodes``.

    When a frontier would overflow the cap, a uniform random subset of it is
    kept (requires ``rng``; falls back to deterministic truncation).
    """
    if num_hops < 0:
        raise ValueError("num_hops must be non-negative")
    seeds = np.asarray(seeds, dtype=np.int64)
    visited: set[int] = set(int(s) for s in seeds)
    frontier = list(visited)
    for _ in range(num_hops):
        if len(visited) >= max_nodes:
            break
        next_frontier: list[int] = []
        for node in frontier:
            for nb in graph.neighbors(node):
                nb = int(nb)
                if nb not in visited:
                    visited.add(nb)
                    next_frontier.append(nb)
        if len(visited) > max_nodes:
            overflow = len(visited) - max_nodes
            if rng is not None:
                drop = rng.choice(len(next_frontier), size=overflow, replace=False)
                dropped = {next_frontier[i] for i in drop}
            else:
                dropped = set(next_frontier[-overflow:])
            visited -= dropped
            next_frontier = [n for n in next_frontier if n not in dropped]
        frontier = next_frontier
        if not frontier:
            break
    return np.array(sorted(visited), dtype=np.int64)


def random_walk_neighborhood(
    graph: Graph,
    seeds: np.ndarray,
    num_hops: int,
    max_nodes: int = 64,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Random-walk subgraph sampler from Sec. IV-A1.

    For each seed: add the seed and its neighbours, then walk — pick a random
    neighbour, absorb *its* neighbours (duplicates removed), repeat
    ``num_hops`` times; terminate early once ``max_nodes`` distinct nodes are
    collected.
    """
    if num_hops < 0:
        raise ValueError("num_hops must be non-negative")
    rng = rng or np.random.default_rng()
    seeds = np.asarray(seeds, dtype=np.int64)
    visited: set[int] = set(int(s) for s in seeds)

    for seed in seeds:
        current = int(seed)
        for _ in range(num_hops):
            neighbors = graph.neighbors(current)
            for nb in neighbors:
                if len(visited) >= max_nodes:
                    break
                visited.add(int(nb))
            if len(visited) >= max_nodes or neighbors.size == 0:
                break
            current = int(neighbors[rng.integers(neighbors.size)])
    return np.array(sorted(visited), dtype=np.int64)


def sample_data_graph(
    graph: Graph,
    datapoint: Datapoint,
    num_hops: int = 1,
    max_nodes: int = 64,
    rng: np.random.Generator | None = None,
    method: str = "random_walk",
) -> Subgraph:
    """Contextualise one datapoint into its data graph ``G_i^D`` (Eq. 1)."""
    if method == "random_walk":
        sampler = random_walk_neighborhood
    elif method == "bfs":
        sampler = bfs_neighborhood
    else:
        raise ValueError(f"unknown sampling method {method!r}")

    if isinstance(datapoint, EdgeInput):
        relation = datapoint.relation
    elif isinstance(datapoint, NodeInput):
        relation = None
    else:
        raise TypeError(f"unsupported datapoint type {type(datapoint)!r}")
    node_set = sampler(graph, datapoint.nodes, num_hops, max_nodes, rng)
    return induced_subgraph(graph, node_set, datapoint.nodes,
                            center_relation=relation)
