"""Delta-overlay adjacency: live mutations over an immutable CSR core.

:class:`DeltaAdjacency` layers three mutable structures over a frozen
:class:`~repro.graph.csr.CSRAdjacency` base so the graph can absorb online
edge/node updates without rebuilding the CSR per write:

* **per-row delta lists** — destinations appended after the base row;
* **tombstones** — a boolean ``alive`` mask over base slots, so removals
  are O(1) writes and reads filter dead slots out;
* **grown rows** — nodes added after the base was built own all-delta rows.

The read surface is drop-in for the CSR (``neighbors`` /
``gather_neighbors`` / ``degree`` / ``visited_scratch`` /
``release_scratch``, plus ``neighbor_edges`` on the directed view), which
is what lets both sampling engines — and subgraph induction — run
unmodified over a mutated graph.

Canonical row order (the bit-identity contract)
-----------------------------------------------
A from-scratch rebuild over the *live* edge list (base edges minus
removals, in original order, then appended edges) must read identically to
the overlay.  The rebuild's undirected CSR is built from the doubled list
``[src ++ dst, dst ++ src]``, so a node's row enumerates its **forward**
slots (live edge order) and then its **reverse** slots.  The overlay
therefore keeps *two lanes* per undirected row: appended forward slots
splice in at the forward/reverse boundary of the base row (``lane_mid``),
appended reverse slots at the row end::

    row(u) = base_fwd[alive] ++ delta_fwd ++ base_rev[alive] ++ delta_rev

The directed view is single-lane (appends go at the row end).  Every slot
carries a stable **external edge id** — ids are append-only positions in
the owning :class:`~repro.graph.graph.Graph`'s edge arrays and survive
both removals and :meth:`Graph.compact`, so datapoints and datasets that
reference edges by id never dangle.

``compact()`` (driven by the Graph once the overlay exceeds
``compact_threshold``) folds tombstones and deltas back into a clean base,
after which reads take the zero-overhead fast paths again.

Tiered compaction (LSM-style)
-----------------------------
Per-row assembly makes a dirty row ~50x more expensive to read than a
clean one, and ``gather_neighbors`` historically dropped the *whole*
frontier to that path when any member was dirty.  The overlay therefore
tiers rows by temperature: every dirty-row read bumps a per-row counter
(any write to the row resets it), and once a row accrues
``promote_after`` reads its canonical content is re-materialised into a
contiguous **side store** (``_side_dst`` / ``_side_eid``).  Promoted rows
read as pure slices again, and a frontier whose dirty rows are all
promoted is gathered with one fused scatter over base + side storage —
no Python per-row loop.  Writes demote (the side copy is dropped and the
row returns to the delta tier), so write-heavy rows never pay the
re-materialisation churn.  Promotion is read-transparent: a promoted row
is bit-identical to its assembled delta form, which the differential
suites assert at every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .csr import CSRAdjacency

__all__ = ["GraphUpdate", "AppliedUpdate", "DeltaAdjacency"]

_EMPTY = np.empty(0, dtype=np.int64)


def _as_ids(values) -> np.ndarray:
    return np.asarray(values, dtype=np.int64).reshape(-1)


def _scatter_rows(src: np.ndarray, starts: np.ndarray, lens: np.ndarray,
                  out: np.ndarray, out_starts: np.ndarray) -> None:
    """Copy ``src[starts[i]:starts[i]+lens[i]]`` into
    ``out[out_starts[i]:out_starts[i]+lens[i]]`` for all ``i`` with three
    vector kernels (same repeat trick as ``gather_csr_rows``)."""
    if starts.size == 0:
        return
    cum = np.cumsum(lens)
    total = int(cum[-1])
    if total == 0:
        return
    inner = cum - lens  # exclusive prefix: segment start in flat space
    flat = np.arange(total, dtype=np.int64)
    out[flat + np.repeat(out_starts - inner, lens)] = (
        src[flat + np.repeat(starts - inner, lens)])


@dataclass(frozen=True)
class GraphUpdate:
    """One batch of live-graph mutations, applied in the order
    *add nodes → add edges → remove edges* (so added edges may reference
    nodes added by the same update, and removals may target ids that
    existed before the update).  Validation errors raise mid-batch with
    the earlier stages applied — validate ids upstream when that matters.
    """

    add_src: tuple | np.ndarray = ()
    add_dst: tuple | np.ndarray = ()
    add_rel: tuple | np.ndarray | None = None
    remove_edges: tuple | np.ndarray = ()
    add_node_features: np.ndarray | None = None
    add_node_labels: tuple | np.ndarray | None = None


@dataclass(frozen=True)
class AppliedUpdate:
    """Receipt of one applied :class:`GraphUpdate`.

    ``touched_nodes`` is the set every consumer keys invalidation on: the
    endpoints of added and removed edges plus the new nodes — exactly the
    rows whose adjacency reads changed, so any cached artifact whose
    sampled subgraphs avoid all of them is still valid.
    """

    version: int
    new_node_ids: np.ndarray = field(default_factory=lambda: _EMPTY)
    new_edge_ids: np.ndarray = field(default_factory=lambda: _EMPTY)
    removed_edge_ids: np.ndarray = field(default_factory=lambda: _EMPTY)
    touched_nodes: np.ndarray = field(default_factory=lambda: _EMPTY)
    compacted: bool = False


class DeltaAdjacency:
    """Mutable overlay over one CSR base (see module docstring).

    Built via :meth:`directed` / :meth:`undirected`; writes go through
    :meth:`append_slot` / :meth:`remove_slot` / :meth:`grow` (driven by
    :class:`~repro.graph.graph.Graph`), reads through the CSR-compatible
    surface.
    """

    def __init__(self, base: CSRAdjacency, slot_eid: np.ndarray,
                 lane_of: np.ndarray | None, lane_mid: np.ndarray | None,
                 id_space: int):
        self.base = base
        self.num_nodes = base.num_nodes
        self._slot_eid = slot_eid      # external edge id per base slot
        self._lane_of = lane_of        # bool per base slot (None: one lane)
        self.lane_mid = lane_mid       # per-row forward-lane slot count
        self._id_space = int(id_space)
        self._alive: np.ndarray | None = None       # tombstone mask, lazy
        self._row_dead: np.ndarray | None = None    # dead slots per row
        self._dirty = np.zeros(self.num_nodes, dtype=bool)
        # lane -> {row: ([dst, ...], [eid, ...])}
        self._delta: tuple[dict, dict] = ({}, {})
        self._delta_loc: dict[tuple[int, int], int] = {}  # (eid, lane) -> row
        self._slot_map: list[np.ndarray] | None = None    # lazy eid -> slot
        self._num_dead = 0
        self._num_delta = 0
        self._scratch_pool: list[np.ndarray] = []
        # --- tiered compaction (see module docstring) -----------------
        #: Master switch for read-driven promotion (benchmarks compare
        #: against the pure delta tier by flipping this off).
        self.tier_enabled = True
        #: Dirty-row reads before promotion; any write resets the count.
        self.promote_after = 2
        self._reads = np.zeros(self.num_nodes, dtype=np.int64)
        self._side_start = np.full(self.num_nodes, -1, dtype=np.int64)
        self._side_len = np.zeros(self.num_nodes, dtype=np.int64)
        self._side_dst = _EMPTY
        self._side_eid = _EMPTY   # directed view only (neighbor_edges)
        self._side_used = 0
        self._side_garbage = 0
        self._promotions = 0
        self._demotions = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def directed(cls, num_nodes: int, src: np.ndarray, dst: np.ndarray,
                 eids: np.ndarray, id_space: int) -> "DeltaAdjacency":
        """Single-lane overlay over the live directed edge list.

        ``eids`` carries the external (stable) edge id of every live edge;
        the base CSR's ``edge_ids`` are patched to external ids so clean
        rows answer :meth:`neighbor_edges` with pure slices.
        """
        src, dst, eids = _as_ids(src), _as_ids(dst), _as_ids(eids)
        base = CSRAdjacency(num_nodes, src, dst)
        base.edge_ids = eids[base.edge_ids] if eids.size else eids
        return cls(base, slot_eid=base.edge_ids, lane_of=None,
                   lane_mid=None, id_space=id_space)

    @classmethod
    def undirected(cls, num_nodes: int, src: np.ndarray, dst: np.ndarray,
                   eids: np.ndarray, id_space: int) -> "DeltaAdjacency":
        """Two-lane overlay over the symmetrised live edge list."""
        src, dst, eids = _as_ids(src), _as_ids(dst), _as_ids(eids)
        length = src.size
        base = CSRAdjacency(num_nodes, np.concatenate([src, dst]),
                            np.concatenate([dst, src]))
        pos = base.edge_ids  # position in the doubled list
        if length:
            slot_eid = eids[pos % length]
            lane_of = pos >= length
        else:
            slot_eid = _EMPTY
            lane_of = np.empty(0, dtype=bool)
        base.edge_ids = slot_eid
        lane_mid = np.bincount(src, minlength=num_nodes).astype(np.int64)
        return cls(base, slot_eid=slot_eid, lane_of=lane_of,
                   lane_mid=lane_mid, id_space=id_space)

    @classmethod
    def wrap_directed(cls, base: CSRAdjacency,
                      id_space: int) -> "DeltaAdjacency":
        """Promote an unmutated graph's directed CSR in place (no rebuild).

        Such a CSR's ``edge_ids`` already are the external edge ids.
        """
        return cls(base, slot_eid=base.edge_ids, lane_of=None,
                   lane_mid=None, id_space=id_space)

    @classmethod
    def wrap_undirected(cls, base: CSRAdjacency, src: np.ndarray,
                        id_space: int) -> "DeltaAdjacency":
        """Promote an unmutated graph's doubled-list CSR in place.

        Its ``edge_ids`` are doubled-list positions: ids below
        ``id_space`` (= ``num_edges`` at promotion) are forward slots,
        the rest reverses — decomposed here into (external id, lane).
        """
        pos = base.edge_ids
        if id_space:
            slot_eid = pos % id_space
            lane_of = pos >= id_space
        else:
            slot_eid = pos.copy()
            lane_of = np.empty(0, dtype=bool)
        base.edge_ids = slot_eid
        lane_mid = np.bincount(np.asarray(src, dtype=np.int64),
                               minlength=base.num_nodes).astype(np.int64)
        return cls(base, slot_eid=slot_eid, lane_of=lane_of,
                   lane_mid=lane_mid, id_space=id_space)

    # ------------------------------------------------------------------
    # Overlay bookkeeping
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Live slot count (base minus tombstones plus deltas)."""
        return self.base.num_edges - self._num_dead + self._num_delta

    def overlay_fraction(self) -> float:
        """Overlay slots (tombstoned + delta) relative to live slots."""
        return (self._num_dead + self._num_delta) / max(self.num_edges, 1)

    def overlay_stats(self) -> dict:
        return {
            "base_slots": self.base.num_edges,
            "dead_slots": self._num_dead,
            "delta_slots": self._num_delta,
            "fraction": self.overlay_fraction(),
            "promoted_rows": int((self._side_start >= 0).sum()),
            "promotions": self._promotions,
            "demotions": self._demotions,
            "side_slots": self._side_used - self._side_garbage,
        }

    # ------------------------------------------------------------------
    # Tiered compaction (promotion / demotion of hot dirty rows)
    # ------------------------------------------------------------------
    def _assemble_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """Canonical ``(dst, eid)`` of a dirty row; directed view only."""
        base = self.base
        dst_parts: list[np.ndarray] = []
        eid_parts: list[np.ndarray] = []
        if node < base.num_nodes:
            lo, hi = int(base.indptr[node]), int(base.indptr[node + 1])
            seg_dst, seg_eid = base.indices[lo:hi], base.edge_ids[lo:hi]
            if self._alive is not None:
                keep = self._alive[lo:hi]
                seg_dst, seg_eid = seg_dst[keep], seg_eid[keep]
            dst_parts.append(seg_dst)
            eid_parts.append(seg_eid)
        entry = self._delta[0].get(node)
        if entry is not None and entry[0]:
            dst_parts.append(np.array(entry[0], dtype=np.int64))
            eid_parts.append(np.array(entry[1], dtype=np.int64))
        if not dst_parts:
            return _EMPTY, _EMPTY
        return np.concatenate(dst_parts), np.concatenate(eid_parts)

    def _side_reserve(self, length: int) -> int:
        """Reserve ``length`` side-store slots; returns their start."""
        need = self._side_used + length
        if need > self._side_dst.size:
            cap = max(64, 2 * self._side_dst.size, need)
            buf = np.empty(cap, dtype=np.int64)
            buf[:self._side_used] = self._side_dst[:self._side_used]
            self._side_dst = buf
            if self.lane_mid is None:
                ebuf = np.empty(cap, dtype=np.int64)
                ebuf[:self._side_used] = self._side_eid[:self._side_used]
                self._side_eid = ebuf
        start = self._side_used
        self._side_used = need
        return start

    def _promote(self, node: int) -> None:
        """Re-materialise a hot dirty row into the contiguous side store."""
        if self.lane_mid is None:
            dst, eid = self._assemble_edges(node)
        else:
            parts = self._assemble(node)
            dst = np.concatenate(parts) if parts else _EMPTY
            eid = None
        length = int(dst.size)
        start = self._side_reserve(length)
        self._side_dst[start:start + length] = dst
        if eid is not None:
            self._side_eid[start:start + length] = eid
        self._side_start[node] = start
        self._side_len[node] = length
        self._promotions += 1

    def _note_write(self, row: int) -> None:
        """A write cools the row: reset its read streak and demote it."""
        self._reads[row] = 0
        if self._side_start[row] >= 0:
            self._side_garbage += int(self._side_len[row])
            self._side_start[row] = -1
            self._side_len[row] = 0
            self._demotions += 1
            if (self._side_garbage > 1024
                    and self._side_garbage * 2 > self._side_used):
                self._repack_side()

    def _repack_side(self) -> None:
        """Squeeze demoted rows' garbage out of the side store."""
        live = np.flatnonzero(self._side_start >= 0)
        starts = self._side_start[live]
        lens = self._side_len[live]
        ends = np.cumsum(lens)
        total = int(ends[-1]) if lens.size else 0
        out_starts = ends - lens
        new_dst = np.empty(max(total, 64), dtype=np.int64)
        _scatter_rows(self._side_dst, starts, lens, new_dst, out_starts)
        if self.lane_mid is None:
            new_eid = np.empty(new_dst.size, dtype=np.int64)
            _scatter_rows(self._side_eid, starts, lens, new_eid, out_starts)
            self._side_eid = new_eid
        self._side_dst = new_dst
        self._side_start[live] = out_starts
        self._side_used = total
        self._side_garbage = 0

    def _refresh_dirty(self, row: int) -> None:
        """Re-derive dirtiness after a row's last delta slot drops.

        Grown rows (no base coverage) and rows with tombstoned base slots
        stay dirty; a row back at its exact base state regains the slice
        fast path.
        """
        if row >= self.base.num_nodes:
            return
        if self._row_dead is not None and self._row_dead[row]:
            return
        for lane in self._delta:
            if row in lane:
                return
        self._dirty[row] = False

    # ------------------------------------------------------------------
    # Reads (CSRAdjacency-compatible)
    # ------------------------------------------------------------------
    def _delta_row(self, lane: int, node: int) -> np.ndarray | None:
        entry = self._delta[lane].get(node)
        if entry is None or not entry[0]:
            return None
        return np.array(entry[0], dtype=np.int64)

    def _assemble(self, node: int) -> list[np.ndarray]:
        """Canonical-order parts of a dirty row (destinations)."""
        parts: list[np.ndarray] = []
        base = self.base
        alive = self._alive
        if node < base.num_nodes:
            lo, hi = int(base.indptr[node]), int(base.indptr[node + 1])
            if self.lane_mid is None:
                seg = base.indices[lo:hi]
                parts.append(seg if alive is None else seg[alive[lo:hi]])
                delta = self._delta_row(0, node)
                if delta is not None:
                    parts.append(delta)
            else:
                mid = lo + int(self.lane_mid[node])
                fwd, rev = base.indices[lo:mid], base.indices[mid:hi]
                if alive is not None:
                    fwd, rev = fwd[alive[lo:mid]], rev[alive[mid:hi]]
                parts.append(fwd)
                delta = self._delta_row(0, node)
                if delta is not None:
                    parts.append(delta)
                parts.append(rev)
                delta = self._delta_row(1, node)
                if delta is not None:
                    parts.append(delta)
        else:
            for lane in (0, 1) if self.lane_mid is not None else (0,):
                delta = self._delta_row(lane, node)
                if delta is not None:
                    parts.append(delta)
        return parts

    def neighbors(self, node: int) -> np.ndarray:
        """Destinations of ``node``'s row, canonical (rebuild) order."""
        node = int(node)
        if not self._dirty[node]:
            base = self.base
            return base.indices[base.indptr[node]:base.indptr[node + 1]]
        if self.tier_enabled:
            start = int(self._side_start[node])
            if start < 0:
                self._reads[node] += 1
                if self._reads[node] >= self.promote_after:
                    self._promote(node)
                    start = int(self._side_start[node])
            if start >= 0:
                return self._side_dst[start:start + int(self._side_len[node])]
        return self._row(node)

    def _row(self, node: int) -> np.ndarray:
        """Row of a dirty node without touching the read counters."""
        start = int(self._side_start[node])
        if start >= 0:
            return self._side_dst[start:start + int(self._side_len[node])]
        parts = self._assemble(node)
        if not parts:
            return _EMPTY
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def neighbor_edges(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """(destinations, external edge ids); directed (one-lane) view."""
        if self.lane_mid is not None:
            raise TypeError("neighbor_edges is a directed-view query")
        node = int(node)
        base = self.base
        if not self._dirty[node]:
            lo, hi = base.indptr[node], base.indptr[node + 1]
            return base.indices[lo:hi], base.edge_ids[lo:hi]
        if self.tier_enabled:
            start = int(self._side_start[node])
            if start < 0:
                self._reads[node] += 1
                if self._reads[node] >= self.promote_after:
                    self._promote(node)
                    start = int(self._side_start[node])
            if start >= 0:
                end = start + int(self._side_len[node])
                return self._side_dst[start:end], self._side_eid[start:end]
        return self._assemble_edges(node)

    def gather_neighbors(self, frontier: np.ndarray) -> np.ndarray:
        """Concatenated rows of ``frontier``, frontier order.

        Frontiers that avoid every dirty row take the base CSR's fused
        gather; a single touched row drops just that call to per-row
        assembly, so reads over untouched regions keep the fast path.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        if frontier.size == 0:
            return _EMPTY
        dirty = self._dirty[frontier]
        if not dirty.any():
            return self.base.gather_neighbors(frontier)
        if self.tier_enabled:
            hot = frontier[dirty]
            cold = hot[self._side_start[hot] < 0]
            if cold.size:
                np.add.at(self._reads, cold, 1)
                due = np.unique(
                    cold[self._reads[cold] >= self.promote_after])
                for node in due.tolist():
                    self._promote(node)
            if (self._side_start[hot] >= 0).all():
                return self._gather_tiered(frontier, dirty)
        rows = [self._row(int(node)) if hit else self.neighbors(int(node))
                for node, hit in zip(frontier, dirty)]
        rows = [row for row in rows if row.size]
        if not rows:
            return _EMPTY
        return np.concatenate(rows)

    def _gather_tiered(self, frontier: np.ndarray,
                       dirty: np.ndarray) -> np.ndarray:
        """Fused gather over a mixed frontier: clean rows slice the base
        CSR, promoted dirty rows slice the side store, both scattered
        into frontier order with three vector kernels apiece."""
        base = self.base
        clean = ~dirty
        clean_rows = frontier[clean]
        hot_rows = frontier[dirty]
        clean_starts = base.indptr[clean_rows]
        lens = np.empty(frontier.size, dtype=np.int64)
        lens[clean] = base.indptr[clean_rows + 1] - clean_starts
        lens[dirty] = self._side_len[hot_rows]
        ends = np.cumsum(lens)
        total = int(ends[-1])
        if total == 0:
            return _EMPTY
        out_starts = ends - lens
        out = np.empty(total, dtype=np.int64)
        _scatter_rows(base.indices, clean_starts, lens[clean],
                      out, out_starts[clean])
        _scatter_rows(self._side_dst, self._side_start[hot_rows],
                      lens[dirty], out, out_starts[dirty])
        return out

    def degree(self, node: int | None = None):
        """Live row length of ``node``, or the full vector when ``None``."""
        base = self.base
        if node is None:
            out = np.zeros(self.num_nodes, dtype=np.int64)
            out[:base.num_nodes] = np.diff(base.indptr)
            if self._row_dead is not None:
                out[:base.num_nodes] -= self._row_dead
            for lane in self._delta:
                for row, (dsts, _) in lane.items():
                    out[row] += len(dsts)
            return out
        node = int(node)
        total = 0
        if node < base.num_nodes:
            total = int(base.indptr[node + 1] - base.indptr[node])
            if self._row_dead is not None:
                total -= int(self._row_dead[node])
        for lane in self._delta:
            entry = lane.get(node)
            if entry is not None:
                total += len(entry[0])
        return total

    # ------------------------------------------------------------------
    # Scratch pool (size-checked: num_nodes may grow between borrows)
    # ------------------------------------------------------------------
    def visited_scratch(self) -> np.ndarray:
        """Check out an all-``False`` mask of the *current* node count.

        Unlike the immutable CSR's pool, masks parked here can go stale:
        ``add_nodes`` grows ``num_nodes`` while a borrower may still hold
        (and later release) a mask sized to the old graph.  Stale masks
        are retired at checkout instead of being handed to a sampler that
        would index past their end.
        """
        pool = self._scratch_pool
        size = self.num_nodes
        while pool:
            mask = pool.pop()
            if mask.size == size:
                return mask
        return np.zeros(size, dtype=bool)

    def release_scratch(self, mask: np.ndarray) -> None:
        """Return a borrowed mask (must be all-``False``; stale sizes drop)."""
        if mask.size == self.num_nodes:
            self._scratch_pool.append(mask)

    # ------------------------------------------------------------------
    # Writes (driven by Graph)
    # ------------------------------------------------------------------
    def grow(self, count: int) -> None:
        """Extend the node-id space; new rows start all-delta (and dirty)."""
        if count <= 0:
            return
        self.num_nodes += int(count)
        self._dirty = np.concatenate(
            [self._dirty, np.ones(count, dtype=bool)])
        self._reads = np.concatenate(
            [self._reads, np.zeros(count, dtype=np.int64)])
        self._side_start = np.concatenate(
            [self._side_start, np.full(count, -1, dtype=np.int64)])
        self._side_len = np.concatenate(
            [self._side_len, np.zeros(count, dtype=np.int64)])
        # Parked masks are sized to the old graph; drop them now rather
        # than at checkout so the memory goes with them.
        self._scratch_pool.clear()

    def append_slot(self, row: int, dst: int, eid: int, lane: int = 0) -> None:
        """Append one live slot ``row -> dst`` carrying external id ``eid``."""
        row, dst, eid = int(row), int(dst), int(eid)
        entry = self._delta[lane].setdefault(row, ([], []))
        entry[0].append(dst)
        entry[1].append(eid)
        self._delta_loc[(eid, lane)] = row
        self._dirty[row] = True
        self._num_delta += 1
        self._note_write(row)

    def remove_slot(self, eid: int, lane: int = 0) -> None:
        """Kill the slot carrying ``eid`` in ``lane`` (delta or tombstone)."""
        eid = int(eid)
        row = self._delta_loc.pop((eid, lane), None)
        if row is not None:
            dsts, eids = self._delta[lane][row]
            index = eids.index(eid)
            del dsts[index]
            del eids[index]
            self._num_delta -= 1
            if not dsts:
                # Removing the row's last delta slot may return it to its
                # clean base state; keeping the empty entry used to leave
                # the row dirty forever (stale-dirty-row bug).
                del self._delta[lane][row]
                self._refresh_dirty(row)
            self._note_write(row)
            return
        self._ensure_slot_map()
        slot = -1
        if 0 <= eid < self._id_space:
            slot = int(self._slot_map[lane][eid])
        if slot < 0:
            raise KeyError(f"edge {eid} has no live slot in lane {lane}")
        self._slot_map[lane][eid] = -1
        if self._alive is None:
            self._alive = np.ones(self.base.num_edges, dtype=bool)
            self._row_dead = np.zeros(self.base.num_nodes, dtype=np.int64)
        self._alive[slot] = False
        row = int(np.searchsorted(self.base.indptr, slot, side="right") - 1)
        self._row_dead[row] += 1
        self._dirty[row] = True
        self._num_dead += 1
        self._note_write(row)

    def _ensure_slot_map(self) -> None:
        """Lazily invert ``slot -> eid`` into per-lane ``eid -> slot``."""
        if self._slot_map is not None:
            return
        slots = np.arange(self.base.num_edges, dtype=np.int64)
        if self._lane_of is None:
            lanes = [np.ones(self.base.num_edges, dtype=bool)]
        else:
            lanes = [~self._lane_of, self._lane_of]
        self._slot_map = []
        for member in lanes:
            mapping = np.full(self._id_space, -1, dtype=np.int64)
            mapping[self._slot_eid[member]] = slots[member]
            self._slot_map.append(mapping)
