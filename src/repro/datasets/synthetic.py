"""Synthetic graph generators standing in for the paper's datasets.

The paper pre-trains on MAG240M (244M-node citation network) and Wiki
(4.8M-node knowledge graph) and evaluates on arXiv, ConceptNet, FB15K-237
and NELL.  None of these can be shipped offline, so two generator families
reproduce their *task structure* at CPU scale:

* :func:`synthetic_citation_graph` — a stochastic block model with
  class-conditional Gaussian features; node labels are the classification
  target (MAG240M / arXiv analogue).
* :func:`synthetic_knowledge_graph` — entities carry latent types drawn from
  a shared semantic space; each relation connects a specific (head-type,
  tail-type) pair, so the relation of an edge is predictable from its
  endpoints' features and neighbourhood (Wiki / ConceptNet / FB15K-237 /
  NELL analogue).

Cross-domain transfer is preserved by drawing every dataset's class/type
prototypes from one *shared semantic basis* (like OGB/BERT feature spaces in
the original) while keeping the label vocabularies, graph statistics and
generator seeds disjoint.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph

__all__ = [
    "semantic_basis",
    "synthetic_citation_graph",
    "synthetic_knowledge_graph",
]

_BASIS_SEED = 20250504  # arXiv submission date of the paper; fixed forever.


def semantic_basis(feature_dim: int) -> np.ndarray:
    """Shared orthonormal basis of the "semantic space" for all datasets.

    All class/type prototypes are sparse combinations of these directions,
    mirroring how the paper's datasets share a BERT/OGB embedding space even
    though their label vocabularies are disjoint.
    """
    rng = np.random.default_rng(_BASIS_SEED)
    random = rng.normal(size=(feature_dim, feature_dim))
    q, _ = np.linalg.qr(random)
    return q


def _prototypes(num: int, feature_dim: int, rng: np.random.Generator,
                components: int = 3) -> np.ndarray:
    """Draw ``num`` unit prototypes as sparse mixes of the semantic basis."""
    basis = semantic_basis(feature_dim)
    protos = np.zeros((num, feature_dim))
    for i in range(num):
        picked = rng.choice(feature_dim, size=components, replace=False)
        weights = rng.normal(size=components)
        protos[i] = weights @ basis[picked]
    norms = np.linalg.norm(protos, axis=1, keepdims=True)
    return protos / np.maximum(norms, 1e-12)


def synthetic_citation_graph(
    num_nodes: int,
    num_classes: int,
    feature_dim: int = 32,
    avg_degree: float = 8.0,
    homophily: float = 0.8,
    feature_noise: float = 0.7,
    rng: np.random.Generator | int | None = None,
    name: str = "citation",
) -> Graph:
    """Stochastic-block-model citation network with node labels.

    Parameters mirror the observable statistics of citation graphs: high
    homophily (papers cite their own field), moderate degree, and features
    clustered around a per-class prototype with Gaussian noise.
    """
    if num_classes < 2:
        raise ValueError("need at least two classes")
    if num_nodes < num_classes:
        raise ValueError("need at least one node per class")
    if not 0.0 <= homophily <= 1.0:
        raise ValueError("homophily must lie in [0, 1]")
    rng = np.random.default_rng(rng)

    # Guarantee every class occupied, then fill uniformly.
    labels = np.concatenate([
        np.arange(num_classes),
        rng.integers(0, num_classes, size=num_nodes - num_classes),
    ])
    rng.shuffle(labels)

    prototypes = _prototypes(num_classes, feature_dim, rng)
    features = prototypes[labels] + feature_noise * rng.normal(
        size=(num_nodes, feature_dim))

    members: list[np.ndarray] = [np.nonzero(labels == c)[0]
                                 for c in range(num_classes)]
    num_edges = int(num_nodes * avg_degree / 2)
    src = rng.integers(0, num_nodes, size=num_edges)
    same_class = rng.random(num_edges) < homophily
    dst = np.empty(num_edges, dtype=np.int64)
    for i, s in enumerate(src):
        if same_class[i]:
            pool = members[labels[s]]
            dst[i] = pool[rng.integers(pool.size)]
        else:
            dst[i] = rng.integers(num_nodes)
    keep = src != dst
    return Graph(
        num_nodes,
        src[keep],
        dst[keep],
        node_features=features,
        node_labels=labels,
        name=name,
    )


def synthetic_knowledge_graph(
    num_entities: int,
    num_relations: int,
    num_edges: int,
    feature_dim: int = 32,
    feature_noise: float = 0.7,
    edge_noise: float = 0.05,
    relation_skew: float = 0.6,
    rng: np.random.Generator | int | None = None,
    name: str = "kg",
) -> Graph:
    """Relational graph where relations bind typed entity pairs.

    Every relation ``r`` owns an ordered (head-type, tail-type) pair; edges
    of relation ``r`` connect a random head-type entity to a random
    tail-type entity.  ``edge_noise`` fraction of edges use random endpoints
    (task-irrelevant noise — exactly what the Prompt Generator's
    reconstruction layer is meant to down-weight).  ``relation_skew``
    controls the Zipf-like long tail of relation frequencies observed in
    real KGs.
    """
    if num_relations < 2:
        raise ValueError("need at least two relations")
    if num_edges < num_relations:
        raise ValueError("need at least one edge per relation")
    rng = np.random.default_rng(rng)

    num_types = int(np.ceil(np.sqrt(num_relations))) + 1
    if num_entities < num_types:
        raise ValueError("too few entities for the implied type vocabulary")

    # Entity types, every type occupied.
    types = np.concatenate([
        np.arange(num_types),
        rng.integers(0, num_types, size=num_entities - num_types),
    ])
    rng.shuffle(types)
    type_members = [np.nonzero(types == t)[0] for t in range(num_types)]

    prototypes = _prototypes(num_types, feature_dim, rng)
    features = prototypes[types] + feature_noise * rng.normal(
        size=(num_entities, feature_dim))

    # Assign each relation a distinct ordered type pair.
    all_pairs = [(a, b) for a in range(num_types) for b in range(num_types)]
    pair_ids = rng.choice(len(all_pairs), size=num_relations, replace=False)
    head_type = np.array([all_pairs[p][0] for p in pair_ids])
    tail_type = np.array([all_pairs[p][1] for p in pair_ids])

    # Relation features live in the shared semantic space (the analogue of
    # BERT embeddings of relation names): the mean of the endpoint-type
    # prototypes plus a relation-specific offset.
    rel_offsets = _prototypes(num_relations, feature_dim, rng)
    relation_features = (
        0.5 * (prototypes[head_type] + prototypes[tail_type])
        + 0.5 * rel_offsets
    )

    # Zipf-ish relation frequencies, with every relation appearing at least
    # a handful of times so that episodes can always draw prompts.
    raw = (1.0 / np.arange(1, num_relations + 1)) ** relation_skew
    rng.shuffle(raw)
    probabilities = raw / raw.sum()
    floor = max(4, num_edges // (num_relations * 10))
    counts = np.maximum(
        rng.multinomial(max(num_edges - floor * num_relations, 0),
                        probabilities),
        0,
    ) + floor

    src_list, dst_list, rel_list = [], [], []
    for r in range(num_relations):
        count = int(counts[r])
        heads = type_members[head_type[r]]
        tails = type_members[tail_type[r]]
        src_list.append(heads[rng.integers(heads.size, size=count)])
        dst_list.append(tails[rng.integers(tails.size, size=count)])
        rel_list.append(np.full(count, r, dtype=np.int64))
    src = np.concatenate(src_list)
    dst = np.concatenate(dst_list)
    rel = np.concatenate(rel_list)

    # Inject endpoint noise.
    noisy = rng.random(src.shape[0]) < edge_noise
    src[noisy] = rng.integers(0, num_entities, size=int(noisy.sum()))
    dst[noisy] = rng.integers(0, num_entities, size=int(noisy.sum()))

    order = rng.permutation(src.shape[0])
    return Graph(
        num_entities,
        src[order],
        dst[order],
        rel=rel[order],
        num_relations=num_relations,
        node_features=features,
        relation_features=relation_features,
        name=name,
    )
