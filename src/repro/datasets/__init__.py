"""Synthetic dataset suite mirroring the paper's benchmarks."""

from .base import Dataset, EDGE_TASK, NODE_TASK
from .registry import (
    DATASET_BUILDERS,
    arxiv_sim,
    conceptnet_sim,
    fb15k237_sim,
    load_dataset,
    mag240m_sim,
    nell_sim,
    wiki_sim,
)
from .statistics import (
    dataset_statistics,
    extended_statistics,
    format_statistics_table,
    statistics_table,
)
from .synthetic import (
    semantic_basis,
    synthetic_citation_graph,
    synthetic_knowledge_graph,
)

__all__ = [
    "Dataset",
    "NODE_TASK",
    "EDGE_TASK",
    "synthetic_citation_graph",
    "synthetic_knowledge_graph",
    "semantic_basis",
    "mag240m_sim",
    "wiki_sim",
    "arxiv_sim",
    "conceptnet_sim",
    "fb15k237_sim",
    "nell_sim",
    "load_dataset",
    "DATASET_BUILDERS",
    "dataset_statistics",
    "extended_statistics",
    "statistics_table",
    "format_statistics_table",
]
