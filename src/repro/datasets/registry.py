"""Named dataset builders mirroring the paper's benchmark suite (Table II).

Every builder returns a :class:`~repro.datasets.base.Dataset` whose *class
vocabulary matches the paper exactly* where the experiments depend on it
(arXiv 40, ConceptNet 14, FB15K-237 200, NELL 291) while node/edge counts
are scaled to CPU size.  Wiki's 639 relations are scaled to 150 — its only
role is pre-training with 30-way episodes, which 150 relations over-covers.
See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from .base import Dataset, EDGE_TASK, NODE_TASK
from .synthetic import synthetic_citation_graph, synthetic_knowledge_graph

__all__ = [
    "mag240m_sim",
    "wiki_sim",
    "arxiv_sim",
    "conceptnet_sim",
    "fb15k237_sim",
    "nell_sim",
    "load_dataset",
    "DATASET_BUILDERS",
]

FEATURE_DIM = 32


def mag240m_sim(seed: int = 0) -> Dataset:
    """MAG240M analogue: large homophilous citation network, 153 classes."""
    graph = synthetic_citation_graph(
        num_nodes=3000,
        num_classes=153,
        feature_dim=FEATURE_DIM,
        avg_degree=10.0,
        homophily=0.8,
        rng=np.random.default_rng(1000 + seed),
        name="mag240m-sim",
    )
    return Dataset(graph, NODE_TASK, rng=np.random.default_rng(seed))


def wiki_sim(seed: int = 0) -> Dataset:
    """Wiki analogue: pre-training knowledge graph, 150 relations."""
    graph = synthetic_knowledge_graph(
        num_entities=2500,
        num_relations=150,
        num_edges=15000,
        feature_dim=FEATURE_DIM,
        rng=np.random.default_rng(2000 + seed),
        name="wiki-sim",
    )
    return Dataset(graph, EDGE_TASK, rng=np.random.default_rng(seed))


def arxiv_sim(seed: int = 0) -> Dataset:
    """arXiv analogue: downstream citation network, exactly 40 classes."""
    graph = synthetic_citation_graph(
        num_nodes=2400,
        num_classes=40,
        feature_dim=FEATURE_DIM,
        avg_degree=9.0,
        homophily=0.75,
        rng=np.random.default_rng(3000 + seed),
        name="arxiv-sim",
    )
    return Dataset(graph, NODE_TASK, rng=np.random.default_rng(seed))


def conceptnet_sim(seed: int = 0) -> Dataset:
    """ConceptNet analogue: sparse commonsense KG, exactly 14 relations."""
    graph = synthetic_knowledge_graph(
        num_entities=1200,
        num_relations=14,
        num_edges=6000,
        feature_dim=FEATURE_DIM,
        rng=np.random.default_rng(4000 + seed),
        name="conceptnet-sim",
    )
    return Dataset(graph, EDGE_TASK, rng=np.random.default_rng(seed))


def fb15k237_sim(seed: int = 0) -> Dataset:
    """FB15K-237 analogue: dense Freebase KG, exactly 200 relations."""
    graph = synthetic_knowledge_graph(
        num_entities=1500,
        num_relations=200,
        num_edges=16000,
        feature_dim=FEATURE_DIM,
        rng=np.random.default_rng(5000 + seed),
        name="fb15k237-sim",
    )
    return Dataset(graph, EDGE_TASK, rng=np.random.default_rng(seed))


def nell_sim(seed: int = 0) -> Dataset:
    """NELL analogue: sparser web-extracted KG, exactly 291 relations."""
    graph = synthetic_knowledge_graph(
        num_entities=2000,
        num_relations=291,
        num_edges=18000,
        feature_dim=FEATURE_DIM,
        edge_noise=0.08,
        rng=np.random.default_rng(6000 + seed),
        name="nell-sim",
    )
    return Dataset(graph, EDGE_TASK, rng=np.random.default_rng(seed))


DATASET_BUILDERS = {
    "mag240m": mag240m_sim,
    "wiki": wiki_sim,
    "arxiv": arxiv_sim,
    "conceptnet": conceptnet_sim,
    "fb15k237": fb15k237_sim,
    "nell": nell_sim,
}


def load_dataset(name: str, seed: int = 0) -> Dataset:
    """Build a dataset by short name (see :data:`DATASET_BUILDERS`)."""
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_BUILDERS)}"
        ) from None
    return builder(seed=seed)
