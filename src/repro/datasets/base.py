"""Dataset wrapper: a graph plus a classification task and data splits.

A :class:`Dataset` exposes the universe of classifiable *datapoints* — nodes
for node-classification datasets (arXiv-style) or edges for relation
classification (FB15K-237-style) — with train/val/test partitions, matching
"each downstream classification dataset is accompanied by its original
train, validation, and test partitions" (Sec. V-A2).
"""

from __future__ import annotations

import numpy as np

from ..graph import EdgeInput, Graph, NodeInput

__all__ = ["Dataset", "NODE_TASK", "EDGE_TASK"]

NODE_TASK = "node"
EDGE_TASK = "edge"


class Dataset:
    """A graph with a classification task over its nodes or edges."""

    def __init__(
        self,
        graph: Graph,
        task: str,
        name: str | None = None,
        split_fractions: tuple[float, float, float] = (0.6, 0.2, 0.2),
        rng: np.random.Generator | int | None = None,
    ):
        if task not in (NODE_TASK, EDGE_TASK):
            raise ValueError(f"task must be {NODE_TASK!r} or {EDGE_TASK!r}")
        if task == NODE_TASK and graph.node_labels is None:
            raise ValueError("node task requires node labels")
        if abs(sum(split_fractions) - 1.0) > 1e-9:
            raise ValueError("split fractions must sum to one")
        self.graph = graph
        self.task = task
        self.name = name or graph.name
        rng = np.random.default_rng(rng)

        if task == NODE_TASK:
            self._labels = graph.node_labels.copy()
        else:
            self._labels = graph.rel.copy()
        num = self._labels.shape[0]
        order = rng.permutation(num)
        n_train = int(split_fractions[0] * num)
        n_val = int(split_fractions[1] * num)
        self.splits = {
            "train": np.sort(order[:n_train]),
            "val": np.sort(order[n_train:n_train + n_val]),
            "test": np.sort(order[n_train + n_val:]),
        }

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return int(self._labels.max()) + 1 if self._labels.size else 0

    @property
    def num_datapoints(self) -> int:
        return int(self._labels.shape[0])

    def label_of(self, datapoint_id: int) -> int:
        """Ground-truth class of a datapoint id."""
        return int(self._labels[datapoint_id])

    def labels_of(self, datapoint_ids: np.ndarray) -> np.ndarray:
        return self._labels[np.asarray(datapoint_ids, dtype=np.int64)]

    def datapoint(self, datapoint_id: int, with_label: bool = True):
        """Materialise a datapoint id into a :class:`NodeInput`/:class:`EdgeInput`."""
        if self.task == NODE_TASK:
            return NodeInput(int(datapoint_id))
        u, r, v = self.graph.edge_endpoints(int(datapoint_id))
        return EdgeInput(u, v, relation=r if with_label else None)

    def ids_with_label(self, label: int, split: str = "train") -> np.ndarray:
        """Datapoint ids of class ``label`` inside ``split``."""
        ids = self.splits[split]
        return ids[self._labels[ids] == label]

    def classes_with_support(self, min_count: int, split: str = "train") -> np.ndarray:
        """Classes that have at least ``min_count`` examples in ``split``."""
        ids = self.splits[split]
        counts = np.bincount(self._labels[ids], minlength=self.num_classes)
        return np.nonzero(counts >= min_count)[0]

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, task={self.task!r}, "
            f"datapoints={self.num_datapoints}, classes={self.num_classes})"
        )
