"""Dataset statistics — the Table II analogue (plus structural extras)."""

from __future__ import annotations

import numpy as np

from .base import Dataset

__all__ = [
    "dataset_statistics",
    "extended_statistics",
    "statistics_table",
    "format_statistics_table",
]


def dataset_statistics(dataset: Dataset) -> dict:
    """Nodes / edges / classes summary for one dataset (Table II row)."""
    graph = dataset.graph
    return {
        "dataset": dataset.name,
        "task": dataset.task,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "classes": dataset.num_classes,
        "feature_dim": graph.feature_dim,
    }


def extended_statistics(dataset: Dataset,
                        clustering_sample: int = 200,
                        rng: np.random.Generator | int | None = None) -> dict:
    """Structural statistics beyond Table II.

    Adds degree distribution summaries and an (approximate, sampled)
    average clustering coefficient computed with networkx — useful when
    validating that a synthetic analogue matches its real counterpart's
    shape.
    """
    import networkx as nx

    from ..graph import to_networkx

    graph = dataset.graph
    degrees = graph.degree()
    row = dataset_statistics(dataset)
    row["mean_degree"] = float(degrees.mean())
    row["max_degree"] = int(degrees.max())
    row["isolated_nodes"] = int((degrees == 0).sum())

    undirected = to_networkx(graph).to_undirected()
    simple = nx.Graph(undirected)  # collapse multi-edges for clustering
    rng = np.random.default_rng(rng)
    nodes = list(simple.nodes())
    if len(nodes) > clustering_sample:
        nodes = list(rng.choice(nodes, size=clustering_sample,
                                replace=False))
    row["avg_clustering"] = float(nx.average_clustering(simple,
                                                        nodes=nodes))
    return row


def statistics_table(datasets: list[Dataset]) -> list[dict]:
    """Table II analogue over a list of datasets."""
    return [dataset_statistics(d) for d in datasets]


def format_statistics_table(rows: list[dict]) -> str:
    """Render statistics rows as an aligned text table."""
    header = f"{'Dataset':<18}{'Task':<7}{'Nodes':>8}{'Edges':>9}{'Classes':>9}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<18}{row['task']:<7}"
            f"{row['nodes']:>8}{row['edges']:>9}{row['classes']:>9}"
        )
    return "\n".join(lines)
