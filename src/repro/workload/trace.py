"""Typed event traces and the seeded generator that emits them.

A :class:`WorkloadGenerator` composes one arrival process, one tenant
model, and one query model over a **single** ``numpy`` Generator.  Every
event consumes a fixed sequence of draws (arrival interval, tenant,
session, query), so:

* the same seed replays the trace bit-identically, run after run;
* chunked generation (``take(k)`` repeatedly) and one-shot generation
  (``take(n)`` once) produce the *same* stream by construction — both
  are windows over one sequential draw sequence.

The emitted :class:`WorkloadEvent` is the contract named by the issue —
``(arrival_s, tenant, priority, session, query)`` — consumable by the
asyncio gateway (open a session per unique ``session``, submit
``episode.queries[event.query]``) and by the offline perf harness
(replay grouped into virtual-time ticks, no sleeping).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from .arrivals import DiurnalArrivals, MarkovModulatedArrivals, PoissonArrivals
from .models import UniformQueries, ZipfQueries, ZipfTenants

__all__ = [
    "WorkloadEvent",
    "WorkloadTrace",
    "WorkloadGenerator",
    "generate_trace",
]


@dataclass(frozen=True)
class WorkloadEvent:
    """One request in a trace: when, who, how urgent, which query slot."""

    arrival_s: float
    tenant: str
    priority: str
    session: str
    query: int

    def to_json(self) -> str:
        """Canonical one-line JSON — the unit of byte-identity checks.

        ``repr``-style shortest-round-trip floats and sorted keys make
        two equal events serialize to identical bytes on any host.
        """
        return json.dumps(
            {"arrival_s": self.arrival_s, "tenant": self.tenant,
             "priority": self.priority, "session": self.session,
             "query": self.query},
            sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class WorkloadTrace:
    """An ordered, immutable event sequence with replay helpers."""

    events: tuple[WorkloadEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def duration_s(self) -> float:
        return self.events[-1].arrival_s if self.events else 0.0

    def to_jsonl(self) -> str:
        """The trace as canonical JSON lines (byte-comparable)."""
        return "".join(event.to_json() + "\n" for event in self.events)

    def fingerprint(self) -> str:
        """SHA-256 of the canonical serialization — the replay identity."""
        return hashlib.sha256(self.to_jsonl().encode("utf-8")).hexdigest()

    def sessions(self) -> list[tuple[str, str, str]]:
        """Unique ``(tenant, priority, session)`` in first-arrival order.

        The driver's session-open plan: deterministic because the trace
        is.
        """
        seen: dict[str, tuple[str, str, str]] = {}
        for event in self.events:
            if event.session not in seen:
                seen[event.session] = (event.tenant, event.priority,
                                       event.session)
        return list(seen.values())

    def ticks(self, tick_s: float):
        """Group events into virtual-time ticks of ``tick_s`` seconds.

        Yields ``(tick_index, [events...])`` for non-empty ticks, in
        order — the replay unit: a driver submits a tick's events
        back-to-back, then flushes, so queue pressure mirrors the
        trace's burst structure without wall-clock sleeping.
        """
        if tick_s <= 0.0:
            raise ValueError("tick_s must be positive")
        bucket: list[WorkloadEvent] = []
        current = None
        for event in self.events:
            tick = int(event.arrival_s / tick_s)
            if current is not None and tick != current:
                yield current, bucket
                bucket = []
            current = tick
            bucket.append(event)
        if bucket:
            yield current, bucket


class WorkloadGenerator:
    """One seeded event stream; ``take(k)`` yields its next ``k`` events.

    All randomness flows through the single ``numpy`` Generator built
    from ``seed``; the only mutable state is the virtual clock and the
    arrival process's regime — so two generators with equal specs and
    seeds emit byte-identical streams, and chunked vs. one-shot reads
    of one generator are the same stream.
    """

    def __init__(self,
                 arrivals: PoissonArrivals | MarkovModulatedArrivals |
                 DiurnalArrivals,
                 tenants: ZipfTenants,
                 queries: UniformQueries | ZipfQueries | object = None,
                 num_queries: int = 8,
                 seed: int = 0):
        if num_queries < 1:
            raise ValueError("num_queries must be positive")
        self.arrivals = arrivals
        self.tenants = tenants
        self.queries = UniformQueries() if queries is None else queries
        self.num_queries = num_queries
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._t = 0.0
        self._state = arrivals.initial_state()
        self.generated = 0

    def take(self, n: int) -> tuple[WorkloadEvent, ...]:
        """The next ``n`` events of this stream (advances the stream)."""
        events = []
        for _ in range(n):
            # Fixed per-event draw order — the bit-identity contract:
            # interval, tenant, session, query.
            dt, self._state = self.arrivals.next_interval(
                self._rng, self._t, self._state)
            self._t += dt
            spec, session = self.tenants.sample(self._rng)
            query = self.queries.sample(self._rng, self._t,
                                        self.num_queries)
            events.append(WorkloadEvent(
                arrival_s=self._t, tenant=spec.tenant,
                priority=spec.priority, session=session, query=query))
        self.generated += n
        return tuple(events)


def generate_trace(arrivals, tenants, queries=None, num_queries: int = 8,
                   seed: int = 0, num_events: int = 100) -> WorkloadTrace:
    """One-shot convenience: a fresh generator's first ``num_events``."""
    generator = WorkloadGenerator(arrivals, tenants, queries=queries,
                                  num_queries=num_queries, seed=seed)
    return WorkloadTrace(generator.take(num_events))
