"""Composable arrival processes for the workload generator.

Each process is an immutable spec; all runtime state (the current
modulation regime, the virtual clock) lives in the
:class:`~repro.workload.trace.WorkloadGenerator` that drives it, so one
spec can power many independent, individually-seeded streams.

The contract is a single method pair:

* :meth:`initial_state` — the process's per-stream starting state (an
  opaque value the generator threads back in).
* :meth:`next_interval(rng, t, state)` — draw the seconds until the next
  arrival given the stream's RNG, the current virtual time ``t``, and
  the state; returns ``(dt, new_state)``.

Every draw comes from the *one* ``numpy`` Generator the owning stream
holds, in a fixed per-event order — which is what makes a whole trace
replay bit-identically from its seed (see :mod:`repro.workload.trace`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "PoissonArrivals",
    "MarkovModulatedArrivals",
    "DiurnalArrivals",
]


@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson stream: i.i.d. ``Exp(1/rate)`` inter-arrivals.

    The steady-state baseline every other process is compared against.
    """

    rate_qps: float

    def __post_init__(self):
        if self.rate_qps <= 0.0:
            raise ValueError("rate_qps must be positive")

    def initial_state(self):
        return None

    def next_interval(self, rng: np.random.Generator, t: float, state):
        return float(rng.exponential(1.0 / self.rate_qps)), state


@dataclass(frozen=True)
class MarkovModulatedArrivals:
    """Two-regime Markov-modulated Poisson process (bursty traffic).

    The stream alternates between a ``base`` and a ``burst`` regime; at
    each arrival one uniform draw decides whether the regime flips
    (``p_enter`` from base, ``p_exit`` from burst), then the interval is
    drawn at the current regime's rate.  This is the discrete-time
    (per-arrival) MMPP approximation: regime residence is geometric in
    *events*, so a burst of rate ``burst_qps`` lasts on average
    ``1/p_exit`` events — short wall-clock spikes of dense arrivals.
    """

    base_qps: float
    burst_qps: float
    p_enter: float = 0.05
    p_exit: float = 0.15

    def __post_init__(self):
        if self.base_qps <= 0.0 or self.burst_qps <= 0.0:
            raise ValueError("rates must be positive")
        for p in (self.p_enter, self.p_exit):
            if not 0.0 < p <= 1.0:
                raise ValueError("transition probabilities must be in (0, 1]")

    def initial_state(self):
        return "base"

    def next_interval(self, rng: np.random.Generator, t: float, state):
        # Fixed draw order per event (flip, then interval): the stream is
        # a pure function of the seed whatever regime it is in.
        flip = float(rng.random())
        if state == "base" and flip < self.p_enter:
            state = "burst"
        elif state == "burst" and flip < self.p_exit:
            state = "base"
        rate = self.burst_qps if state == "burst" else self.base_qps
        return float(rng.exponential(1.0 / rate)), state


@dataclass(frozen=True)
class DiurnalArrivals:
    """Slow sinusoidal rate drift: ``rate(t) = base·(1 + a·sin(2πt/T))``.

    A compressed diurnal cycle — the generator's virtual clock makes a
    "day" as short as the scenario wants.  Intervals are drawn at the
    instantaneous rate (a piecewise-exponential approximation of the
    non-homogeneous process, exact in the limit of slow drift), so the
    trace sweeps through trough and peak load within one run.
    """

    base_qps: float
    amplitude: float = 0.5
    period_s: float = 60.0

    def __post_init__(self):
        if self.base_qps <= 0.0:
            raise ValueError("base_qps must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1) to keep rate > 0")
        if self.period_s <= 0.0:
            raise ValueError("period_s must be positive")

    def rate_at(self, t: float) -> float:
        phase = 2.0 * math.pi * t / self.period_s
        return self.base_qps * (1.0 + self.amplitude * math.sin(phase))

    def initial_state(self):
        return None

    def next_interval(self, rng: np.random.Generator, t: float, state):
        return float(rng.exponential(1.0 / self.rate_at(t))), state
