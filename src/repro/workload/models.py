"""Who sends each request (tenant skew) and what it asks (node popularity).

Tenant models map one uniform draw to a ``(tenant, session)`` pair;
query models map draws to a query slot index in ``[0, num_queries)``
(each slot is anchored at one episode seed node, so slot popularity *is*
node popularity).  Both are immutable specs driven by the stream's
single RNG — categorical sampling goes through an explicit inverse-CDF
(`searchsorted` over cumulative weights) so every choice costs exactly
one uniform draw in a fixed order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PRIORITY_CLASSES",
    "TenantSpec",
    "ZipfTenants",
    "UniformQueries",
    "ZipfQueries",
    "FlashCrowdQueries",
]

#: Priority classes as plain strings — :mod:`repro.workload` is
#: dependency-free (numpy only); drivers map these onto
#: :class:`repro.serving.Priority` at the boundary.
PRIORITY_CLASSES = ("interactive", "batch", "background")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: identity, QoS class, and its session count."""

    tenant: str
    priority: str
    sessions: int = 1

    def __post_init__(self):
        if self.priority not in PRIORITY_CLASSES:
            raise ValueError(
                f"priority must be one of {PRIORITY_CLASSES}, "
                f"got {self.priority!r}")
        if self.sessions < 1:
            raise ValueError("each tenant needs at least one session")


def _zipf_cdf(n: int, skew: float) -> np.ndarray:
    """Cumulative Zipf weights over ranks ``1..n`` (rank ``r`` ∝ r^-skew)."""
    weights = np.arange(1, n + 1, dtype=np.float64) ** -skew
    cdf = np.cumsum(weights)
    return cdf / cdf[-1]


@dataclass(frozen=True)
class ZipfTenants:
    """Zipf-skewed tenant mix: declaration order is popularity rank.

    ``skew=0`` degenerates to a uniform mix; larger skews concentrate
    traffic on the first tenants.  The per-tenant ``priority`` fields
    give the mix its QoS composition (a tenant serves one class, the
    gateway's invariant).  Sessions within a tenant are uniform.
    """

    tenants: tuple[TenantSpec, ...]
    skew: float = 1.0

    def __post_init__(self):
        if not self.tenants:
            raise ValueError("need at least one tenant")
        if self.skew < 0.0:
            raise ValueError("skew must be non-negative")
        names = [spec.tenant for spec in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError("tenant names must be unique")

    def sample(self, rng: np.random.Generator) -> tuple[TenantSpec, str]:
        """Draw ``(tenant spec, session id)`` — exactly two RNG draws."""
        cdf = _zipf_cdf(len(self.tenants), self.skew)
        spec = self.tenants[int(np.searchsorted(cdf, rng.random()))]
        session = int(rng.integers(spec.sessions))
        return spec, f"{spec.tenant}/s{session}"


@dataclass(frozen=True)
class UniformQueries:
    """Every query slot equally popular — the no-skew reference."""

    def sample(self, rng: np.random.Generator, t: float,
               num_queries: int) -> int:
        return int(rng.integers(num_queries))


@dataclass(frozen=True)
class ZipfQueries:
    """Zipf popularity over query slots: slot 0 is the hottest node."""

    skew: float = 1.0

    def __post_init__(self):
        if self.skew < 0.0:
            raise ValueError("skew must be non-negative")

    def sample(self, rng: np.random.Generator, t: float,
               num_queries: int) -> int:
        cdf = _zipf_cdf(num_queries, self.skew)
        return int(np.searchsorted(cdf, rng.random()))


@dataclass(frozen=True)
class FlashCrowdQueries:
    """A time-boxed hot node: inside ``window`` most traffic hits one slot.

    Outside the window the ``base`` model rules; inside, each event
    first decides (one draw) whether it joins the crowd on
    ``hot_query``, falling through to ``base`` otherwise — so the crowd
    arrives and dissipates at exact, replayable virtual times.
    """

    base: UniformQueries | ZipfQueries
    window: tuple[float, float]
    hot_query: int = 0
    hot_weight: float = 0.9

    def __post_init__(self):
        start, end = self.window
        if end <= start:
            raise ValueError("window end must be after its start")
        if not 0.0 < self.hot_weight <= 1.0:
            raise ValueError("hot_weight must be in (0, 1]")
        if self.hot_query < 0:
            raise ValueError("hot_query must be a valid slot index")

    def sample(self, rng: np.random.Generator, t: float,
               num_queries: int) -> int:
        start, end = self.window
        if start <= t < end:
            if rng.random() < self.hot_weight:
                return min(self.hot_query, num_queries - 1)
        return self.base.sample(rng, t, num_queries)
