"""Seeded trace-driven workload generation (ROADMAP item 5).

Scenario traffic for the serving stack: composable arrival processes
(:mod:`~repro.workload.arrivals`), tenant-skew and node-popularity
models (:mod:`~repro.workload.models`), and the typed event trace plus
the single-RNG generator that binds them (:mod:`~repro.workload.trace`).

The package depends on ``numpy`` only — the serving/experiment layers
consume its traces, never the other way around — and everything it
emits replays bit-identically from a seed.
"""

from .arrivals import DiurnalArrivals, MarkovModulatedArrivals, PoissonArrivals
from .models import (
    PRIORITY_CLASSES,
    FlashCrowdQueries,
    TenantSpec,
    UniformQueries,
    ZipfQueries,
    ZipfTenants,
)
from .trace import (
    WorkloadEvent,
    WorkloadGenerator,
    WorkloadTrace,
    generate_trace,
)

__all__ = [
    "PRIORITY_CLASSES",
    "DiurnalArrivals",
    "FlashCrowdQueries",
    "MarkovModulatedArrivals",
    "PoissonArrivals",
    "TenantSpec",
    "UniformQueries",
    "WorkloadEvent",
    "WorkloadGenerator",
    "WorkloadTrace",
    "ZipfQueries",
    "ZipfTenants",
    "generate_trace",
]
