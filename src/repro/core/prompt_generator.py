"""Stage 1 — Prompt Generator (Sec. IV-A).

Turns datapoints into data graphs: random-walk / BFS sampling of the l-hop
neighbourhood (Eq. 1).  The *reconstruction* half of the stage (Eqs. 2–4)
is parameterised and therefore lives on the model
(:meth:`~repro.core.model.GraphPrompterModel.reconstruction_weights`); this
class owns the sampling half and the subgraph plumbing.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph, Subgraph, sample_data_graph
from ..graph.datapoints import Datapoint
from ..obs.tracing import span
from .config import GraphPrompterConfig

__all__ = ["PromptGenerator"]


class PromptGenerator:
    """Samples data graphs ``G_i^D`` for datapoints of one source graph.

    With ``deterministic=True`` every datapoint gets its own RNG seeded by
    its identity (seed nodes + relation + ``salt``) instead of drawing from
    one shared stream.  The sampled subgraph then depends only on the
    datapoint, never on *when* or *with whom* it is sampled — the property
    the serving layer relies on to keep micro-batched predictions identical
    to per-query ones, and what makes split streaming episodes reproduce a
    merged run exactly.
    """

    def __init__(self, graph: Graph, config: GraphPrompterConfig,
                 rng: np.random.Generator | int | None = None,
                 deterministic: bool = False, salt: int = 0):
        self.graph = graph
        self.config = config.validate()
        self.rng = np.random.default_rng(rng)
        self.deterministic = deterministic
        self.salt = salt

    def _rng_for(self, datapoint: Datapoint) -> np.random.Generator:
        if not self.deterministic:
            return self.rng
        material = [self.salt] + [int(n) for n in datapoint.nodes]
        if datapoint.relation is not None:
            material.append(int(datapoint.relation))
        return np.random.default_rng(material)

    def subgraph_for(self, datapoint: Datapoint) -> Subgraph:
        """Sample one data graph (Eq. 1) with the configured strategy."""
        return sample_data_graph(
            self.graph,
            datapoint,
            num_hops=self.config.num_hops,
            max_nodes=self.config.max_subgraph_nodes,
            rng=self._rng_for(datapoint),
            method=self.config.sampling_method,
            engine=self.config.sampling_engine,
        )

    def subgraphs_for(self, datapoints: list[Datapoint]) -> list[Subgraph]:
        """Sample data graphs for a list of datapoints."""
        with span("sample"):
            return [self.subgraph_for(dp) for dp in datapoints]
