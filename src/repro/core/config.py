"""Configuration for the GraphPrompter model and pipeline.

The three stage toggles (`use_reconstruction`, `use_selection_layers`,
`use_knn`, `use_augmenter`) correspond exactly to the Fig. 3 ablation rows;
setting all four to ``False`` recovers the Prodigy baseline (random prompt
selection, unweighted subgraphs, no test-time augmentation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GraphPrompterConfig", "prodigy_config"]


@dataclass(frozen=True)
class GraphPrompterConfig:
    """Hyper-parameters of the full multi-stage pipeline.

    Attributes
    ----------
    hidden_dim:
        Embedding width (paper: 256 on GPU; CPU default 32).
    num_gnn_layers:
        Depth of the data-graph encoder ``GNN_D``.
    num_task_layers:
        Depth of the attention GNN over the task graph ``GNN_T``.
    num_hops:
        ``l`` — subgraph radius (paper default 1; Fig. 8 sweeps 1–3).
    max_subgraph_nodes:
        Preset node limit of the random-walk sampler (Sec. IV-A1).
    conv:
        Data-graph convolution: ``"sage"`` (paper) or ``"gat"`` (Fig. 4).
    sampling_method:
        ``"random_walk"`` (paper) or ``"bfs"``.
    sampling_engine:
        ``"vectorized"`` (CSR frontier gathers, the hot path) or
        ``"legacy"`` (per-node Python loops).  Bit-identical outputs —
        the legacy engine exists as the reference for the sampler
        equivalence suite and for perf A/B runs (``repro bench``).
    use_reconstruction:
        Stage 1 — learn edge weights (Eqs. 2–3) instead of raw subgraphs.
    use_selection_layers:
        Stage 2a — pre-trained importance scores ``I_p`` (Eq. 5).
    use_knn:
        Stage 2b — kNN retrieval of prompts by similarity (Eq. 6).
    use_augmenter:
        Stage 3 — online pseudo-label cache (Eq. 9).
    cache_size:
        ``c`` — Augmenter cache capacity (paper: 3, Fig. 5 sweeps 1–10).
    cache_policy:
        Replacement policy of the Augmenter cache: ``"lfu"`` (paper),
        ``"lru"`` or ``"fifo"`` (Further Discussion: "we can replace the
        cache … with other caching solutions").
    recon_scorer:
        Edge-scoring network of the reconstruction layer: ``"mlp"``
        (paper, Eq. 2), ``"bilinear"`` or ``"cosine_gate"`` (Further
        Discussion: "the reconstruction layer … can be replaced with
        networks other than just MLP").
    knn_metric:
        Similarity for Eq. 6: ``"cosine"`` (default), ``"euclidean"`` or
        ``"manhattan"`` (the paper notes the metric is substitutable).
    temperature:
        Scale applied to cosine logits before softmax/cross-entropy.
    random_pseudo_labels:
        Table VII ablation — fill the cache with random queries instead of
        the most confident ones.
    deterministic_sampling:
        Seed each datapoint's subgraph sampler by the datapoint identity
        instead of one shared stream, so subgraphs are independent of call
        order.  Required by the online serving path (batched == unbatched
        predictions) and by split streaming episodes that must replay a
        merged run exactly.
    num_shards:
        Default shard count of the serving layer's
        :class:`~repro.shard.ShardedGraphStore` (1 = monolithic).
        Sharding never changes predictions — sampling over the sharded
        store is bit-identical to the monolithic engines.
    num_workers:
        Default worker count of the serving layer's
        :class:`~repro.shard.WorkerPool` (1 = in-process).
    shard_strategy:
        Node-partition strategy: ``"greedy"`` (degree-balanced) or
        ``"hash"`` (stateless splitmix64).
    worker_backend:
        ``"auto"`` (processes when ``num_workers > 1`` *and* the host
        has more than one usable core, else serial), ``"process"``
        (force a pool), or ``"serial"`` (deterministic in-process
        fallback).
    gateway_max_queue:
        Bound of the serving gateway's admission queue (across all
        priority classes).  Above it requests are shed with a typed
        ``Overloaded`` result; lower priority classes are shed earlier
        (at fixed fractions of the bound) so interactive latency stays
        bounded under overload.
    gateway_max_batch_size:
        Micro-batch size cap of each gateway priority queue.
    gateway_max_wait_s:
        Age bound of a waiting gateway batch (the base release policy);
        the deadline-aware policy usually fires first.
    gateway_flush_fraction:
        Fraction of a request's deadline budget it may spend queued
        before its class queue force-flushes, leaving the rest of the
        budget for service.
    gateway_tenant_rate_qps:
        Sustained per-tenant admission rate (token-bucket refill);
        0 disables rate limiting.
    gateway_tenant_burst:
        Token-bucket capacity: how many requests a tenant may burst
        above the sustained rate.
    gateway_tenant_quota:
        Absolute per-tenant admitted-query quota (0 = unlimited).
    gateway_deadline_interactive_s / gateway_deadline_batch_s /
    gateway_deadline_background_s:
        Deadline budget attached to each admitted request by priority
        class.
    mutable_graph:
        Enable the serving layer's live-update path
        (:meth:`~repro.serving.PromptServer.update_graph`): online
        edge/node mutations flow through
        :class:`~repro.graph.DeltaAdjacency` overlays and stale session
        caches are invalidated by graph-version epoch instead of serving
        pre-mutation prompts.
    compact_threshold:
        Overlay fraction (tombstoned + delta slots relative to live
        slots) above which a mutated graph folds its overlays back into
        clean CSR bases.  Only consulted when ``mutable_graph`` is on.
    obs_metrics_enabled:
        Record serving-layer metrics into the ambient
        :class:`~repro.obs.MetricsRegistry` (near-zero-cost hot-path
        instruments plus scrape-time ledger mirrors).  ``False`` gives
        the server a disabled registry: every record path short-circuits
        after one branch.
    tensor_backend:
        Compute backend for no-grad inference (:mod:`repro.nn.backend`):
        ``"numpy"`` (exact reference, bit-identical, the default),
        ``"fused"`` (sorted-segment reduceat message passing),
        ``"blocked"`` (threaded row-blocked gemm) or ``"fast"``
        (fused + blocked).  Training always runs on the exact default
        path regardless of this setting; non-default backends agree with
        it to float rounding, not bit-for-bit (see ``docs/backends.md``).
    inference_dtype:
        Compute precision of no-grad inference: ``"float64"`` (exact,
        default) or ``"float32"`` (~1e-6 relative error, roughly half
        the memory traffic).  Like ``tensor_backend``, scoped to
        inference only — stored weights stay float64.
    pool_quantization:
        At-rest encoding of per-session candidate-pool embeddings:
        ``"none"`` (float64 ndarray, default) or ``"int8"`` (per-row
        symmetric scale, ~8x smaller at rest, dequantized per
        micro-batch on read).  Quantization caps per-element round-trip
        error at ``row_maxabs / 254`` and is gated by a top-1 agreement
        suite (``tests/test_backend_equivalence.py``).
    obs_trace_every:
        Deterministic request-trace sampling rate for the serving
        gateway: every N-th submitted request carries a
        :class:`~repro.obs.TraceContext` collecting per-stage spans
        (admission, queue wait, encode, shard fan-out, predict, total).
        0 (the default) disables tracing; any N is safe to leave on —
        sampling is counter-based (no RNG), so traced runs stay
        bit-identical to untraced ones.
    """

    hidden_dim: int = 32
    num_gnn_layers: int = 2
    num_task_layers: int = 2
    num_hops: int = 1
    max_subgraph_nodes: int = 20
    conv: str = "sage"
    sampling_method: str = "random_walk"
    sampling_engine: str = "vectorized"
    use_reconstruction: bool = True
    use_selection_layers: bool = True
    use_knn: bool = True
    use_augmenter: bool = True
    cache_size: int = 3
    cache_policy: str = "lfu"
    recon_scorer: str = "mlp"
    knn_metric: str = "cosine"
    temperature: float = 10.0
    random_pseudo_labels: bool = False
    deterministic_sampling: bool = False
    num_shards: int = 1
    num_workers: int = 1
    shard_strategy: str = "greedy"
    worker_backend: str = "auto"
    mutable_graph: bool = False
    compact_threshold: float = 0.25
    gateway_max_queue: int = 128
    gateway_max_batch_size: int = 16
    gateway_max_wait_s: float = 1.0
    gateway_flush_fraction: float = 0.5
    gateway_tenant_rate_qps: float = 0.0
    gateway_tenant_burst: float = 16.0
    gateway_tenant_quota: int = 0
    gateway_deadline_interactive_s: float = 0.05
    gateway_deadline_batch_s: float = 0.5
    gateway_deadline_background_s: float = 5.0
    obs_metrics_enabled: bool = True
    obs_trace_every: int = 0
    tensor_backend: str = "numpy"
    inference_dtype: str = "float64"
    pool_quantization: str = "none"
    seed: int = 0

    def validate(self) -> "GraphPrompterConfig":
        """Raise on inconsistent settings; returns self for chaining."""
        if self.hidden_dim < 1:
            raise ValueError("hidden_dim must be positive")
        if self.num_hops < 0:
            raise ValueError("num_hops must be non-negative")
        if self.cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        if self.conv not in ("sage", "gat"):
            raise ValueError(f"unknown conv {self.conv!r}")
        if self.sampling_method not in ("random_walk", "bfs"):
            raise ValueError(f"unknown sampler {self.sampling_method!r}")
        if self.sampling_engine not in ("vectorized", "legacy"):
            raise ValueError(f"unknown sampling engine {self.sampling_engine!r}")
        if self.knn_metric not in ("cosine", "euclidean", "manhattan"):
            raise ValueError(f"unknown knn metric {self.knn_metric!r}")
        if self.cache_policy not in ("lfu", "lru", "fifo"):
            raise ValueError(f"unknown cache policy {self.cache_policy!r}")
        if self.recon_scorer not in ("mlp", "bilinear", "cosine_gate"):
            raise ValueError(f"unknown recon scorer {self.recon_scorer!r}")
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")
        if self.num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if self.shard_strategy not in ("greedy", "hash"):
            raise ValueError(f"unknown shard strategy {self.shard_strategy!r}")
        if self.worker_backend not in ("auto", "serial", "process"):
            raise ValueError(f"unknown worker backend {self.worker_backend!r}")
        if self.compact_threshold <= 0:
            raise ValueError("compact_threshold must be positive")
        if self.gateway_max_queue < 1:
            raise ValueError("gateway_max_queue must be at least 1")
        if self.gateway_max_batch_size < 1:
            raise ValueError("gateway_max_batch_size must be at least 1")
        if self.gateway_max_wait_s < 0:
            raise ValueError("gateway_max_wait_s must be non-negative")
        if not 0.0 < self.gateway_flush_fraction <= 1.0:
            raise ValueError("gateway_flush_fraction must be in (0, 1]")
        if self.gateway_tenant_rate_qps < 0:
            raise ValueError("gateway_tenant_rate_qps must be non-negative")
        if self.gateway_tenant_burst <= 0:
            raise ValueError("gateway_tenant_burst must be positive")
        if self.gateway_tenant_quota < 0:
            raise ValueError("gateway_tenant_quota must be non-negative")
        for name in ("gateway_deadline_interactive_s",
                     "gateway_deadline_batch_s",
                     "gateway_deadline_background_s"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.obs_trace_every < 0:
            raise ValueError("obs_trace_every must be non-negative")
        if self.tensor_backend not in ("numpy", "fused", "blocked", "fast"):
            raise ValueError(f"unknown tensor backend {self.tensor_backend!r}")
        if self.inference_dtype not in ("float64", "float32"):
            raise ValueError(
                f"unknown inference dtype {self.inference_dtype!r}")
        if self.pool_quantization not in ("none", "int8"):
            raise ValueError(
                f"unknown pool quantization {self.pool_quantization!r}")
        return self

    def ablate(self, **flags) -> "GraphPrompterConfig":
        """Return a copy with some stages toggled (Fig. 3 helper)."""
        return replace(self, **flags)


def prodigy_config(base: GraphPrompterConfig | None = None) -> GraphPrompterConfig:
    """The Prodigy baseline: every GraphPrompter stage switched off."""
    base = base or GraphPrompterConfig()
    return base.ablate(
        use_reconstruction=False,
        use_selection_layers=False,
        use_knn=False,
        use_augmenter=False,
    )
