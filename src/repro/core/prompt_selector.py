"""Stage 2 — Prompt Selector (Sec. IV-B).

Combines two signals to pick the k most useful prompts per class out of the
N candidates:

* the pre-trained selection layers' importance ``I_p`` (Eq. 5, on the
  model), and
* kNN retrieval similarity between query and prompt subgraph embeddings
  (Eq. 6).

Scores combine as ``score(p, q) = sim(p, q) + I_p · I_q`` (Eq. 7); a voting
round over all queries (Eq. 8) yields the shared prompt set ``Ŝ``.  The
selection honours the episode's class structure ("selecting k examples per
category", Sec. V-A2): each query casts its votes inside the candidate pool
of its *retrieval-predicted* class (nearest class centroid), so queries of
other classes cannot pull a class's prompt choice toward themselves; classes
that receive no votes fall back to the query-averaged score.
"""

from __future__ import annotations

import numpy as np

from .config import GraphPrompterConfig

__all__ = ["PromptSelector", "pairwise_similarity"]


def pairwise_similarity(queries: np.ndarray, prompts: np.ndarray,
                        metric: str = "cosine") -> np.ndarray:
    """Similarity matrix ``(n_queries, n_prompts)`` for Eq. 6.

    Cosine by default; Euclidean / Manhattan variants return negated
    distances so that "larger is more similar" holds for every metric (the
    paper notes the metric is substitutable).
    """
    queries = np.asarray(queries, dtype=np.float64)
    prompts = np.asarray(prompts, dtype=np.float64)
    if metric == "cosine":
        qn = queries / np.maximum(np.linalg.norm(queries, axis=1,
                                                 keepdims=True), 1e-12)
        pn = prompts / np.maximum(np.linalg.norm(prompts, axis=1,
                                                 keepdims=True), 1e-12)
        return qn @ pn.T
    if metric == "euclidean":
        diff = queries[:, None, :] - prompts[None, :, :]
        return -np.sqrt((diff**2).sum(axis=-1))
    if metric == "manhattan":
        diff = queries[:, None, :] - prompts[None, :, :]
        return -np.abs(diff).sum(axis=-1)
    raise ValueError(f"unknown metric {metric!r}")


class PromptSelector:
    """Adaptive top-k prompt selection (Eqs. 6–8)."""

    def __init__(self, config: GraphPrompterConfig,
                 rng: np.random.Generator | int | None = None):
        self.config = config.validate()
        self.rng = np.random.default_rng(rng)

    def scores(self, prompt_embeddings: np.ndarray,
               prompt_importance: np.ndarray,
               query_embeddings: np.ndarray,
               query_importance: np.ndarray) -> np.ndarray:
        """Eq. 7 score matrix ``(n_queries, n_prompts)`` under the ablation flags."""
        n = query_embeddings.shape[0]
        p = prompt_embeddings.shape[0]
        total = np.zeros((n, p))
        if self.config.use_knn:
            total += pairwise_similarity(query_embeddings, prompt_embeddings,
                                         self.config.knn_metric)
        if self.config.use_selection_layers:
            total += np.outer(query_importance, prompt_importance)
        return total

    def select(
        self,
        prompt_embeddings: np.ndarray,
        prompt_importance: np.ndarray,
        query_embeddings: np.ndarray,
        query_importance: np.ndarray,
        candidate_labels: np.ndarray,
        shots: int,
    ) -> np.ndarray:
        """Choose ``shots`` prompts per class; returns candidate indices.

        With both kNN and selection layers disabled this degrades to
        Prodigy's uniform random choice.
        """
        candidate_labels = np.asarray(candidate_labels, dtype=np.int64)
        classes = np.unique(candidate_labels)
        adaptive = self.config.use_knn or self.config.use_selection_layers
        if not adaptive:
            # Prodigy: uniform random k-shot per class.
            selected = []
            for cls in classes:
                members = np.nonzero(candidate_labels == cls)[0]
                take = min(shots, members.size)
                choice = self.rng.choice(members, size=take, replace=False)
                selected.append(np.sort(choice))
            return np.concatenate(selected)

        score_matrix = self.scores(prompt_embeddings, prompt_importance,
                                   query_embeddings, query_importance)
        votes = self._vote(score_matrix, prompt_embeddings,
                           query_embeddings, candidate_labels, shots)
        # Fallback ranking for classes whose pool received no votes:
        # query-averaged score (plain Eq. 8 without routing).
        fallback = score_matrix.mean(axis=0)

        selected = []
        for cls in classes:
            members = np.nonzero(candidate_labels == cls)[0]
            take = min(shots, members.size)
            keys = votes[members] + 1e-6 * fallback[members]
            winners = members[np.argsort(-keys, kind="stable")[:take]]
            selected.append(np.sort(winners))
        return np.concatenate(selected)

    def _vote(self, score_matrix: np.ndarray, prompt_embeddings: np.ndarray,
              query_embeddings: np.ndarray, candidate_labels: np.ndarray,
              k: int) -> np.ndarray:
        """Eq. 8 voting, routed by each query's retrieval-predicted class.

        The query first retrieves its nearest class centroid, then votes
        ``score(p, q)`` for its top-k prompts inside that class's pool.
        """
        num_prompts = score_matrix.shape[1]
        votes = np.zeros(num_prompts)
        if self.config.use_knn:
            classes = np.unique(candidate_labels)
            centroids = np.stack([
                prompt_embeddings[candidate_labels == cls].mean(axis=0)
                for cls in classes
            ])
            affinity = pairwise_similarity(query_embeddings, centroids,
                                           self.config.knn_metric)
            routed = classes[affinity.argmax(axis=1)]
        else:
            # Selection layers only: importance is query-independent, so
            # routing is irrelevant — everyone votes everywhere.
            routed = None
        for q in range(score_matrix.shape[0]):
            if routed is None:
                pool = np.arange(num_prompts)
            else:
                pool = np.nonzero(candidate_labels == routed[q])[0]
            take = min(k, pool.size)
            top = pool[np.argsort(-score_matrix[q, pool],
                                  kind="stable")[:take]]
            votes[top] += score_matrix[q, top]
        return votes
