"""Bipartite task-graph construction (Sec. III-B, Fig. 1 right).

A task graph ``G^T`` for an m-way episode holds ``P`` prompt data nodes,
``n`` query data nodes and ``m`` label nodes.  Every data node connects to
every label node; edge attributes encode (prompt vs. query) × (true label vs.
not): prompts use "T"/"F" attributes, queries use the unknown "?" attribute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gnn import (
    EDGE_ATTR_PROMPT_FALSE,
    EDGE_ATTR_PROMPT_TRUE,
    EDGE_ATTR_QUERY,
)

__all__ = ["TaskGraph", "build_task_graph"]


@dataclass(frozen=True)
class TaskGraph:
    """Edge structure + node index bookkeeping of one episode's task graph.

    Node ordering is ``[prompts | queries | labels]``.
    """

    src: np.ndarray          # data-node endpoint of each edge
    dst: np.ndarray          # label-node endpoint of each edge
    attr: np.ndarray         # T / F / ? attribute id per edge
    num_prompts: int
    num_queries: int
    num_ways: int

    @property
    def num_nodes(self) -> int:
        return self.num_prompts + self.num_queries + self.num_ways

    @property
    def prompt_ids(self) -> np.ndarray:
        return np.arange(self.num_prompts)

    @property
    def query_ids(self) -> np.ndarray:
        return self.num_prompts + np.arange(self.num_queries)

    @property
    def label_ids(self) -> np.ndarray:
        return self.num_prompts + self.num_queries + np.arange(self.num_ways)


def build_task_graph(prompt_labels: np.ndarray, num_queries: int,
                     num_ways: int) -> TaskGraph:
    """Construct the fully-connected bipartite task graph.

    ``prompt_labels`` are episode-local labels in ``[0, num_ways)``; each
    prompt node is wired to all ``num_ways`` label nodes with attribute "T"
    on its true label and "F" elsewhere; each query is wired to all label
    nodes with the query attribute.
    """
    prompt_labels = np.asarray(prompt_labels, dtype=np.int64)
    if num_ways < 2:
        raise ValueError("task graph needs at least two label nodes")
    if prompt_labels.size and (prompt_labels.min() < 0
                               or prompt_labels.max() >= num_ways):
        raise ValueError("prompt labels must lie in [0, num_ways)")
    if num_queries < 1:
        raise ValueError("task graph needs at least one query")

    num_prompts = int(prompt_labels.shape[0])
    label_base = num_prompts + num_queries

    # Prompt ↔ label edges.
    p_src = np.repeat(np.arange(num_prompts), num_ways)
    p_dst = label_base + np.tile(np.arange(num_ways), num_prompts)
    p_attr = np.where(
        np.repeat(prompt_labels, num_ways) == np.tile(np.arange(num_ways),
                                                      num_prompts),
        EDGE_ATTR_PROMPT_TRUE,
        EDGE_ATTR_PROMPT_FALSE,
    )

    # Query ↔ label edges.
    q_src = np.repeat(num_prompts + np.arange(num_queries), num_ways)
    q_dst = label_base + np.tile(np.arange(num_ways), num_queries)
    q_attr = np.full(num_queries * num_ways, EDGE_ATTR_QUERY)

    return TaskGraph(
        src=np.concatenate([p_src, q_src]),
        dst=np.concatenate([p_dst, q_dst]),
        attr=np.concatenate([p_attr, q_attr]),
        num_prompts=num_prompts,
        num_queries=num_queries,
        num_ways=num_ways,
    )
