"""m-way k-shot episode sampling (Definition 2, Sec. V-A2).

An :class:`Episode` packages what one in-context prediction round needs:
``N`` candidate prompt examples per class drawn from the train partition
(known labels), and ``n`` queries drawn from the test partition.  Episode
labels are *local* (0..m-1) — the pre-trained model never sees downstream
label ids, which is what makes the setting cross-domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.base import Dataset
from ..graph.datapoints import Datapoint

__all__ = ["Episode", "sample_episode"]


@dataclass
class Episode:
    """One m-way in-context classification round."""

    way_classes: np.ndarray          # global class ids, shape (m,)
    candidates: list[Datapoint]      # N per class, ordered class-major
    candidate_labels: np.ndarray     # local labels in [0, m)
    queries: list[Datapoint]         # n query datapoints (labels hidden)
    query_labels: np.ndarray         # ground truth local labels (n,)

    @property
    def num_ways(self) -> int:
        return int(self.way_classes.shape[0])

    @property
    def num_candidates_per_class(self) -> int:
        return int(self.candidate_labels.shape[0] // self.num_ways)

    @property
    def num_queries(self) -> int:
        return int(self.query_labels.shape[0])

    def candidate_ids_of_class(self, local_label: int) -> np.ndarray:
        """Indices into ``candidates`` belonging to one local class."""
        return np.nonzero(self.candidate_labels == local_label)[0]


def sample_episode(
    dataset: Dataset,
    num_ways: int,
    num_candidates_per_class: int = 10,
    num_queries: int = 8,
    rng: np.random.Generator | int | None = None,
    candidate_split: str = "train",
    query_split: str = "test",
) -> Episode:
    """Draw one episode following the paper's evaluation protocol.

    "We select N (=10) nodes or edges from the training partition per
    category as candidate prompt examples with known labels … test nodes or
    edges from the test partition" (Sec. V-A2).
    """
    if num_ways < 2:
        raise ValueError("num_ways must be at least 2")
    rng = np.random.default_rng(rng)

    eligible = [
        c for c in dataset.classes_with_support(num_candidates_per_class,
                                                candidate_split)
        if len(dataset.ids_with_label(int(c), query_split)) >= 1
    ]
    if len(eligible) < num_ways:
        raise ValueError(
            f"dataset {dataset.name!r} supports only {len(eligible)} classes "
            f"with {num_candidates_per_class} candidates; requested {num_ways}"
        )
    way_classes = rng.choice(np.asarray(eligible), size=num_ways,
                             replace=False)

    candidates: list[Datapoint] = []
    candidate_labels: list[int] = []
    for local, global_class in enumerate(way_classes):
        ids = dataset.ids_with_label(int(global_class), candidate_split)
        chosen = rng.choice(ids, size=num_candidates_per_class, replace=False)
        candidates.extend(dataset.datapoint(int(i)) for i in chosen)
        candidate_labels.extend([local] * num_candidates_per_class)

    # Queries: sample uniformly over the chosen classes' test datapoints.
    query_pool: list[tuple[int, int]] = []  # (datapoint id, local label)
    for local, global_class in enumerate(way_classes):
        for i in dataset.ids_with_label(int(global_class), query_split):
            query_pool.append((int(i), local))
    if not query_pool:
        raise ValueError("no test datapoints available for the chosen classes")
    take = min(num_queries, len(query_pool))
    picked = rng.choice(len(query_pool), size=take, replace=False)
    queries = [dataset.datapoint(query_pool[i][0], with_label=False)
               for i in picked]
    query_labels = np.array([query_pool[i][1] for i in picked],
                            dtype=np.int64)

    return Episode(
        way_classes=np.asarray(way_classes, dtype=np.int64),
        candidates=candidates,
        candidate_labels=np.asarray(candidate_labels, dtype=np.int64),
        queries=queries,
        query_labels=query_labels,
    )
