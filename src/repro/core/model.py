"""The GraphPrompter model: encoder, reconstruction, selection, task GNN.

This module owns every *parameterised* piece of the architecture (all
trained jointly in pre-training, Alg. 1):

* the data-graph encoder ``GNN_D`` (Eq. 4),
* the reconstruction layers scoring subgraph edges (Eqs. 2–3),
* the selection layers scoring prompt importance (Eq. 5),
* the attention task-graph GNN ``GNN_T`` (Eq. 10) and the cosine
  classification head (Eq. 11).

The non-parametric stages — kNN retrieval (Eq. 6–8) and the LFU prompt
cache (Eq. 9) — live in :mod:`repro.core.prompt_selector` and
:mod:`repro.core.prompt_augmenter`; they wrap this model at inference time.
"""

from __future__ import annotations

import contextlib

import numpy as np

from ..gnn import DataGraphEncoder, SubgraphBatch, TaskGraphGNN, scatter_mean
from ..nn import Linear, MLP, Module, Tensor
from ..nn import functional as F
from ..nn.backend import make_backend, use_backend
from ..nn.tensor import is_grad_enabled
from ..obs.tracing import span
from .config import GraphPrompterConfig
from .task_graph import build_task_graph

__all__ = ["GraphPrompterModel"]


class GraphPrompterModel(Module):
    """All trainable components of GraphPrompter.

    Every weight shape is independent of the dataset's label and relation
    vocabularies — relations enter through *feature vectors* in a shared
    semantic space (as BERT text embeddings do in the original) — so one
    pre-trained state dict loads onto any downstream graph, which is the
    cross-domain requirement of Sec. V-A2.

    Parameters
    ----------
    feature_dim:
        Node feature width of the source graph (shared across datasets).
    num_relations:
        Relation vocabulary size of the *current* graph.  Metadata only;
        weight shapes do not depend on it.
    config:
        Architecture + stage configuration.
    """

    def __init__(self, feature_dim: int, num_relations: int = 1,
                 config: GraphPrompterConfig | None = None):
        super().__init__()
        self.config = (config or GraphPrompterConfig()).validate()
        rng = np.random.default_rng(self.config.seed)
        hidden = self.config.hidden_dim
        self.feature_dim = feature_dim
        self.num_relations = num_relations

        self.encoder = DataGraphEncoder(
            feature_dim=feature_dim,
            hidden_dim=hidden,
            num_layers=self.config.num_gnn_layers,
            conv=self.config.conv,
            rng=rng,
        )
        # Reconstruction layers (Eq. 2): node tasks score concat(V(u), V(v)),
        # edge tasks score the edge's own (relation-feature) embedding.
        # The scorer network is pluggable (paper's Further Discussion):
        # "mlp" (Eq. 2), "bilinear", or "cosine_gate".
        self.recon_feat_proj = Linear(feature_dim, hidden, rng=rng)
        self.recon_rel_proj = Linear(feature_dim, hidden, rng=rng)
        scorer = self.config.recon_scorer
        if scorer == "mlp":
            self.recon_node_mlp = MLP([2 * hidden, hidden, 1], rng=rng)
            self.recon_rel_mlp = MLP([hidden, hidden, 1], rng=rng)
        elif scorer == "bilinear":
            from ..nn import Parameter
            from ..nn import init as _init
            self.recon_bilinear = Parameter(
                _init.xavier_uniform(rng, hidden, hidden))
            self.recon_rel_vec = Parameter(
                _init.xavier_uniform(rng, hidden, 1, shape=(hidden,)))
        else:  # cosine_gate
            from ..nn import Parameter
            self.recon_scale = Parameter(np.array([1.0]))
            self.recon_bias = Parameter(np.array([0.0]))
        # Selection layers (Eq. 5).
        self.selection_mlp = MLP([hidden, hidden, 1], rng=rng)
        # Task-graph attention GNN (Eq. 10).
        self.task_gnn = TaskGraphGNN(hidden,
                                     num_layers=self.config.num_task_layers,
                                     rng=rng)
        # Inference compute backend (docs/backends.md).  ``None`` means the
        # exact default path — no backend scoping, zero overhead.  A
        # configured backend is activated only around no-grad forwards, so
        # training is always exact float64 regardless of config.
        if (self.config.tensor_backend == "numpy"
                and self.config.inference_dtype == "float64"):
            self._backend = None
        else:
            self._backend = make_backend(self.config.tensor_backend,
                                         dtype=self.config.inference_dtype)

    def _backend_scope(self):
        """Context activating the configured inference backend, if any.

        A no-op (null context) on the default config or whenever gradients
        are being recorded — accelerated backends never see training.
        """
        if self._backend is None or is_grad_enabled():
            return contextlib.nullcontext()
        return use_backend(self._backend)

    # ------------------------------------------------------------------
    # Stage 1 — Prompt Generator (reconstruction)
    # ------------------------------------------------------------------
    def reconstruction_weights(self, batch: SubgraphBatch) -> Tensor:
        """Edge weights ``w_uv = σ(MLP_φ(·))`` for every batch edge (Eqs. 2–3)."""
        if batch.num_edges == 0:
            return Tensor(np.zeros(0))
        scorer = self.config.recon_scorer
        x = self.recon_feat_proj(Tensor(batch.node_features))
        h_u = x.gather_rows(batch.src)
        h_v = x.gather_rows(batch.dst)
        if batch.rel_features is not None:
            # Edge classification: each edge has its own initial embedding.
            rel_h = self.recon_rel_proj(Tensor(batch.rel_features))
            if scorer == "mlp":
                z = self.recon_rel_mlp(rel_h)
            elif scorer == "bilinear":
                z = rel_h @ self.recon_rel_vec
            else:  # cosine_gate: relation vs mean endpoint agreement
                mid = (h_u + h_v) * 0.5
                z = (F.cosine_similarity(rel_h, mid) * self.recon_scale
                     + self.recon_bias)
        else:
            if scorer == "mlp":
                z = self.recon_node_mlp(
                    Tensor.concatenate([h_u, h_v], axis=1))
            elif scorer == "bilinear":
                z = ((h_u @ self.recon_bilinear) * h_v).sum(axis=-1)
            else:  # cosine_gate: endpoint agreement
                z = (F.cosine_similarity(h_u, h_v) * self.recon_scale
                     + self.recon_bias)
        return z.reshape(-1).sigmoid()

    def encode_batch(self, batch: SubgraphBatch) -> Tensor:
        """Subgraph embeddings ``G_i`` (Eq. 4), reconstructed when enabled."""
        with span("forward"), self._backend_scope():
            weights = None
            if self.config.use_reconstruction:
                weights = self.reconstruction_weights(batch)
            return self.encoder(batch, edge_weights=weights)

    def encode_subgraphs(self, subgraphs: list, arena=None) -> Tensor:
        """Batch a list of subgraphs and encode it.

        ``arena`` optionally supplies reusable batch buffers
        (:class:`~repro.gnn.BatchArena`); the serving loop passes one so
        micro-batch ticks recycle the large batch arrays instead of
        reallocating them.
        """
        return self.encode_batch(SubgraphBatch.from_subgraphs(subgraphs,
                                                              arena=arena))

    # ------------------------------------------------------------------
    # Stage 2a — selection layers
    # ------------------------------------------------------------------
    def importance(self, embeddings: Tensor) -> Tensor:
        """Prompt importance ``I_p = σ(MLP_θ(G_p))`` (Eq. 5)."""
        with self._backend_scope():
            return self.selection_mlp(embeddings).reshape(-1).sigmoid()

    def weight_by_importance(self, embeddings: Tensor,
                             importance: Tensor) -> Tensor:
        """``G'_p = G_p · I_p`` — the ``G_SI`` inputs of the task graph."""
        return embeddings * importance.reshape(-1, 1)

    # ------------------------------------------------------------------
    # Task graph + prediction head
    # ------------------------------------------------------------------
    def task_logits(self, prompt_embeddings: Tensor,
                    prompt_labels: np.ndarray,
                    query_embeddings: Tensor,
                    num_ways: int) -> Tensor:
        """Episode logits ``(n, m)`` via the task graph (Eqs. 10–11).

        Label nodes are initialised with the mean embedding of their true
        prompts, then refined by the attention GNN together with prompt and
        query nodes; the logit is the scaled cosine similarity between the
        refined query and label embeddings.
        """
        prompt_labels = np.asarray(prompt_labels, dtype=np.int64)
        if prompt_embeddings.shape[0] != prompt_labels.shape[0]:
            raise ValueError("one label per prompt embedding required")
        graph = build_task_graph(prompt_labels, query_embeddings.shape[0],
                                 num_ways)
        with self._backend_scope():
            label_init = scatter_mean(prompt_embeddings, prompt_labels,
                                      num_ways)
            h0 = Tensor.concatenate(
                [prompt_embeddings, query_embeddings, label_init], axis=0)
            h = self.task_gnn(h0, graph.src, graph.dst, graph.attr,
                              graph.num_nodes)
            query_h = h.gather_rows(graph.query_ids)
            label_h = h.gather_rows(graph.label_ids)
            return F.pairwise_cosine(query_h, label_h) * self.config.temperature

    def predict(self, logits: Tensor) -> tuple[np.ndarray, np.ndarray]:
        """Labels and confidences from episode logits (Eq. 11)."""
        probs = F.softmax(logits, axis=-1).data
        predictions = probs.argmax(axis=-1)
        confidences = probs.max(axis=-1)
        return predictions.astype(np.int64), confidences
