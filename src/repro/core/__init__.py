"""GraphPrompter core: the paper's multi-stage prompt-optimization method."""

from .config import GraphPrompterConfig, prodigy_config
from .episodes import Episode, sample_episode
from .inference import EpisodeResult, GraphPrompterPipeline
from .model import GraphPrompterModel
from .pretrain import PretrainConfig, Pretrainer, TrainingHistory
from .prompt_augmenter import CacheEntry, PromptAugmenter
from .prompt_generator import PromptGenerator
from .prompt_selector import PromptSelector, pairwise_similarity
from .task_graph import TaskGraph, build_task_graph

__all__ = [
    "GraphPrompterConfig",
    "prodigy_config",
    "GraphPrompterModel",
    "GraphPrompterPipeline",
    "EpisodeResult",
    "Episode",
    "sample_episode",
    "PretrainConfig",
    "Pretrainer",
    "TrainingHistory",
    "PromptGenerator",
    "PromptSelector",
    "pairwise_similarity",
    "PromptAugmenter",
    "CacheEntry",
    "TaskGraph",
    "build_task_graph",
]
