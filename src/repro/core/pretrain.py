"""Pre-training (Alg. 1): Neighbor Matching + Multi-Task objectives.

Following Prodigy (Sec. IV-D), each step samples one episode per pre-training
task, pushes it through the full prompt pipeline (reconstruction → selection
weighting → task graph) and minimises the summed cross-entropies
``L = L_NM + L_MT`` (Eqs. 12–14) with AdamW.

* **Neighbor Matching** — self-supervised: ``m`` anchor nodes define ``m``
  local neighbourhoods; prompts and queries are neighbours of the anchors
  and the label is *which* neighbourhood a node belongs to.
* **Multi-Task** — supervised few-shot episodes over the source graph's own
  labels (node classes or edge relations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.base import Dataset
from ..graph import NodeInput
from ..nn import AdamW, clip_grad_norm
from ..nn import functional as F
from .episodes import sample_episode
from .model import GraphPrompterModel
from .prompt_generator import PromptGenerator

__all__ = ["PretrainConfig", "TrainingHistory", "Pretrainer"]


@dataclass(frozen=True)
class PretrainConfig:
    """Hyper-parameters of the pre-training loop.

    The paper uses 30-way / 3-shot / 4-query tasks for 10k steps on an A100
    (Sec. V-A4); CPU defaults are scaled down but keep the same structure.
    """

    steps: int = 200
    num_ways: int = 5
    num_shots: int = 3
    num_queries: int = 4
    learning_rate: float = 1e-3
    weight_decay: float = 1e-3
    grad_clip: float = 5.0
    neighbor_matching: bool = True
    multi_task: bool = True
    log_every: int = 10

    def validate(self) -> "PretrainConfig":
        if self.steps < 1:
            raise ValueError("steps must be positive")
        if not (self.neighbor_matching or self.multi_task):
            raise ValueError("enable at least one pre-training task")
        if self.num_ways < 2 or self.num_shots < 1 or self.num_queries < 1:
            raise ValueError("invalid episode shape")
        return self


@dataclass
class TrainingHistory:
    """Loss / accuracy trajectory for the Fig. 9 curves."""

    steps: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    def record(self, step: int, loss: float, accuracy: float) -> None:
        self.steps.append(step)
        self.losses.append(loss)
        self.accuracies.append(accuracy)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else float("nan")


class Pretrainer:
    """Runs Alg. 1 over a source dataset."""

    def __init__(self, model: GraphPrompterModel, dataset: Dataset,
                 config: PretrainConfig | None = None,
                 rng: np.random.Generator | int | None = None):
        self.model = model
        self.dataset = dataset
        self.config = (config or PretrainConfig()).validate()
        self.rng = np.random.default_rng(rng)
        self.generator = PromptGenerator(dataset.graph, model.config,
                                         rng=self.rng)
        self.optimizer = AdamW(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )

    # ------------------------------------------------------------------
    # Episode construction
    # ------------------------------------------------------------------
    def _neighbor_matching_episode(self):
        """Sample an NM episode: prompts/queries labelled by anchor node."""
        cfg = self.config
        graph = self.dataset.graph
        degrees = graph.degree()
        eligible = np.nonzero(degrees >= cfg.num_shots + 1)[0]
        if eligible.size < cfg.num_ways:
            raise ValueError(
                "graph too sparse for neighbor-matching pre-training"
            )
        anchors = self.rng.choice(eligible, size=cfg.num_ways, replace=False)

        prompts, prompt_labels = [], []
        query_pool: list[tuple[int, int]] = []
        for local, anchor in enumerate(anchors):
            neighbors = np.unique(graph.neighbors(int(anchor)))
            neighbors = neighbors[neighbors != anchor]
            self.rng.shuffle(neighbors)
            take = min(cfg.num_shots, neighbors.size - 1)
            for node in neighbors[:take]:
                prompts.append(NodeInput(int(node)))
                prompt_labels.append(local)
            for node in neighbors[take:]:
                query_pool.append((int(node), local))

        self.rng.shuffle(query_pool)
        chosen = query_pool[:cfg.num_queries]
        if not chosen:
            raise ValueError("no query neighbours available")
        queries = [NodeInput(node) for node, _ in chosen]
        query_labels = np.array([label for _, label in chosen],
                                dtype=np.int64)
        return prompts, np.array(prompt_labels), queries, query_labels

    def _multi_task_episode(self):
        """Sample an MT episode from the dataset's own labels."""
        cfg = self.config
        available = len(self.dataset.classes_with_support(
            cfg.num_shots + 1, "train"))
        ways = min(cfg.num_ways, available)
        if ways < 2:
            raise ValueError("not enough labelled support for multi-task")
        episode = sample_episode(
            self.dataset,
            num_ways=ways,
            num_candidates_per_class=cfg.num_shots,
            num_queries=cfg.num_queries,
            rng=self.rng,
            candidate_split="train",
            query_split="train",
        )
        return (episode.candidates, episode.candidate_labels,
                episode.queries, episode.query_labels)

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def _episode_loss(self, prompts, prompt_labels, queries, query_labels):
        """Forward one episode through the full pipeline; returns (loss, acc)."""
        model = self.model
        subgraphs = self.generator.subgraphs_for(list(prompts) + list(queries))
        embeddings = model.encode_subgraphs(subgraphs)
        num_prompts = len(prompts)
        prompt_emb = embeddings[np.arange(num_prompts)]
        query_emb = embeddings[num_prompts + np.arange(len(queries))]
        if model.config.use_selection_layers:
            importance = model.importance(prompt_emb)
            prompt_emb = model.weight_by_importance(prompt_emb, importance)
        num_ways = int(prompt_labels.max()) + 1
        logits = model.task_logits(prompt_emb, prompt_labels, query_emb,
                                   num_ways)
        loss = F.cross_entropy(logits, query_labels)
        accuracy = float((logits.data.argmax(axis=1) == query_labels).mean())
        return loss, accuracy

    # ------------------------------------------------------------------
    def train(self, progress_callback=None) -> TrainingHistory:
        """Run the configured number of steps; returns the history (Fig. 9)."""
        cfg = self.config
        history = TrainingHistory()
        self.model.train()
        for step in range(1, cfg.steps + 1):
            self.optimizer.zero_grad()
            losses, accuracies = [], []
            if cfg.neighbor_matching:
                loss_nm, acc_nm = self._episode_loss(
                    *self._neighbor_matching_episode())
                losses.append(loss_nm)
                accuracies.append(acc_nm)
            if cfg.multi_task:
                loss_mt, acc_mt = self._episode_loss(
                    *self._multi_task_episode())
                losses.append(loss_mt)
                accuracies.append(acc_mt)
            total = losses[0]
            for extra in losses[1:]:
                total = total + extra
            total.backward()
            clip_grad_norm(self.model.parameters(), cfg.grad_clip)
            self.optimizer.step()
            if step % cfg.log_every == 0 or step == 1 or step == cfg.steps:
                history.record(step, total.item(),
                               float(np.mean(accuracies)))
                if progress_callback is not None:
                    progress_callback(step, total.item(),
                                      float(np.mean(accuracies)))
        self.model.eval()
        return history
