"""Stage 3 — Prompt Augmenter (Sec. IV-C).

Online test-time augmentation: high-confidence query predictions become
pseudo-labelled prompts stored in an LFU cache ``C`` (Eq. 9,
``Ŝ' = Ŝ ∪ C``).  Retrieval hits — cache entries that rank among a query's
top-k most similar prompts — bump LFU frequencies, so entries that keep
matching incoming queries survive eviction.

The Table VII ablation (``random_pseudo_labels``) replaces the
max-confidence insertion policy with uniform random query selection.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..cache import CacheStats, make_cache
from .config import GraphPrompterConfig
from .prompt_selector import pairwise_similarity

__all__ = ["PromptAugmenter", "CacheEntry"]


@dataclass
class CacheEntry:
    """One pseudo-labelled test sample held in the Augmenter cache."""

    embedding: np.ndarray
    pseudo_label: int
    confidence: float


class PromptAugmenter:
    """LFU-cached online prompt augmentation."""

    def __init__(self, config: GraphPrompterConfig,
                 rng: np.random.Generator | int | None = None):
        self.config = config.validate()
        self.cache = make_cache(config.cache_policy, config.cache_size)
        self.rng = np.random.default_rng(rng)
        self._next_key = 0
        self._stale_evictions = 0

    def __len__(self) -> int:
        return len(self.cache)

    def cached_prompts(self) -> tuple[np.ndarray, np.ndarray]:
        """Current cache contents as ``(embeddings, pseudo_labels)`` arrays.

        Returns empty arrays when the cache is empty — the caller then skips
        augmentation, matching Alg. 2's "if cache is not empty" guard.
        """
        entries = [value for _, value in self.cache.items()]
        if not entries:
            return (np.zeros((0, 0)), np.zeros(0, dtype=np.int64))
        embeddings = np.stack([e.embedding for e in entries])
        labels = np.array([e.pseudo_label for e in entries], dtype=np.int64)
        return embeddings, labels

    def record_hits(self, query_embeddings: np.ndarray, top_k: int) -> int:
        """LFU frequency update: top-k most similar cache entries per query.

        Returns the number of hits recorded.
        """
        keys = [key for key, _ in self.cache.items()]
        if not keys or query_embeddings.shape[0] == 0:
            return 0
        embeddings = np.stack([self.cache.peek(k).embedding for k in keys])
        sims = pairwise_similarity(query_embeddings, embeddings,
                                   self.config.knn_metric)
        hits = 0
        take = min(top_k, len(keys))
        for row in sims:
            for idx in np.argsort(-row)[:take]:
                if self.cache.touch(keys[idx]):
                    hits += 1
        return hits

    def update(self, query_embeddings: np.ndarray, predictions: np.ndarray,
               confidences: np.ndarray) -> int:
        """Insert pseudo-labelled queries (``Q̂``) into the cache.

        Per batch, at most one query per *predicted class* is inserted — the
        most confident one (``|Q̂| ≤ m``, Sec. IV-C) — or a uniformly random
        one under the Table VII ablation.  Returns the number of insertions.
        """
        predictions = np.asarray(predictions, dtype=np.int64)
        confidences = np.asarray(confidences, dtype=np.float64)
        if query_embeddings.shape[0] == 0:
            return 0
        inserted = 0
        for cls in np.unique(predictions):
            members = np.nonzero(predictions == cls)[0]
            if self.config.random_pseudo_labels:
                chosen = int(self.rng.choice(members))
            else:
                chosen = int(members[np.argmax(confidences[members])])
            entry = CacheEntry(
                embedding=np.array(query_embeddings[chosen], copy=True),
                pseudo_label=int(cls),
                confidence=float(confidences[chosen]),
            )
            self.cache.put(self._next_key, entry)
            self._next_key += 1
            inserted += 1
        return inserted

    def invalidate(self) -> int:
        """Drop every entry because the source graph mutated.

        Cached prompts are embeddings of subgraphs sampled from a graph
        state that no longer exists — serving them would answer with
        pre-mutation structure.  The drop count accumulates in
        ``stale_evictions`` (it survives the underlying cache's counter
        reset).  Returns the number of entries dropped.
        """
        dropped = len(self.cache)
        if dropped:
            self.cache.clear()
        self._stale_evictions += dropped
        return dropped

    def stats(self) -> CacheStats:
        """Usage counters of the underlying cache (any policy),
        plus the Augmenter-level ``stale_evictions`` epoch counter."""
        return replace(self.cache.stats(),
                       stale_evictions=self._stale_evictions)

    def reset(self) -> None:
        """Empty the cache and its counters (between evaluation runs)."""
        self.cache.clear()
        self._next_key = 0
        self._stale_evictions = 0
