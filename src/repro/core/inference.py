"""Inference pipeline (Alg. 2): the three stages wired together.

Per evaluation run the pipeline receives one m-way episode — ``N``
candidates per class plus a stream of queries — and processes queries in
mini-batches, maintaining the Augmenter cache across batches exactly as
Alg. 2 maintains it across test steps:

1. **Generator** — sample + encode candidate and query data graphs (with
   reconstruction weights when enabled).
2. **Selector** — importance scores + kNN retrieval + voting pick ``k``
   prompts per class for the current query batch.
3. **Augmenter** — cache entries join the prompt set (``Ŝ' = Ŝ ∪ C``);
   after prediction, high-confidence queries are inserted and similarity
   hits bump LFU frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.base import Dataset
from ..nn import Tensor, no_grad
from .config import GraphPrompterConfig
from .episodes import Episode
from .model import GraphPrompterModel
from .prompt_augmenter import PromptAugmenter
from .prompt_generator import PromptGenerator
from .prompt_selector import PromptSelector

__all__ = ["EpisodeResult", "GraphPrompterPipeline"]


@dataclass
class EpisodeResult:
    """Predictions and bookkeeping of one evaluation run."""

    predictions: np.ndarray
    labels: np.ndarray
    confidences: np.ndarray
    num_cache_insertions: int

    @property
    def accuracy(self) -> float:
        if self.labels.size == 0:
            return float("nan")
        return float((self.predictions == self.labels).mean())

    @property
    def num_queries(self) -> int:
        return int(self.labels.size)


class GraphPrompterPipeline:
    """End-to-end in-context inference over one downstream dataset."""

    def __init__(self, model: GraphPrompterModel, dataset: Dataset,
                 rng: np.random.Generator | int | None = None):
        self.model = model
        self.dataset = dataset
        self.config: GraphPrompterConfig = model.config
        self.rng = np.random.default_rng(rng)
        self.generator = PromptGenerator(dataset.graph, model.config,
                                         rng=self.rng)
        self.selector = PromptSelector(model.config, rng=self.rng)
        self.augmenter = PromptAugmenter(model.config, rng=self.rng)

    def run_episode(self, episode: Episode, shots: int = 3,
                    query_batch_size: int = 8,
                    reset_cache: bool = True) -> EpisodeResult:
        """Run Alg. 2 over one episode; returns per-query predictions.

        ``reset_cache=False`` keeps the Augmenter cache from a previous
        call — use when streaming one logical episode through several
        ``run_episode`` invocations.
        """
        model = self.model
        model.eval()
        if reset_cache:
            self.augmenter.reset()
        config = self.config
        adaptive = config.use_knn or config.use_selection_layers

        with no_grad():
            if adaptive:
                # GraphPrompter pays for encoding the full candidate pool —
                # the selector needs every embedding (Eqs. 5–8).
                candidate_pool = episode.candidates
                pool_labels = episode.candidate_labels
            else:
                # Prodigy only ever encodes its random k-shot choice
                # (Sec. V-A3), so its per-query cost excludes the pool.
                selected = self.selector.select(
                    np.zeros((len(episode.candidates), 0)),
                    np.zeros(len(episode.candidates)),
                    np.zeros((1, 0)), np.zeros(1),
                    episode.candidate_labels, shots)
                candidate_pool = [episode.candidates[i] for i in selected]
                pool_labels = episode.candidate_labels[selected]
            candidate_subgraphs = self.generator.subgraphs_for(candidate_pool)
            candidate_emb_t = model.encode_subgraphs(candidate_subgraphs)
            candidate_importance = model.importance(candidate_emb_t).data
            candidate_emb = candidate_emb_t.data

            predictions: list[np.ndarray] = []
            confidences: list[np.ndarray] = []
            insertions = 0
            for start in range(0, episode.num_queries, query_batch_size):
                batch_queries = episode.queries[start:start + query_batch_size]
                query_subgraphs = self.generator.subgraphs_for(batch_queries)
                query_emb_t = model.encode_subgraphs(query_subgraphs)
                query_importance = model.importance(query_emb_t).data
                query_emb = query_emb_t.data

                preds, confs, inserted = self._predict_batch(
                    episode, candidate_emb, candidate_importance,
                    pool_labels, query_emb, query_importance, shots,
                    adaptive)
                predictions.append(preds)
                confidences.append(confs)
                insertions += inserted

        return EpisodeResult(
            predictions=np.concatenate(predictions),
            labels=episode.query_labels,
            confidences=np.concatenate(confidences),
            num_cache_insertions=insertions,
        )

    # ------------------------------------------------------------------
    def _predict_batch(self, episode: Episode, candidate_emb: np.ndarray,
                       candidate_importance: np.ndarray,
                       pool_labels: np.ndarray,
                       query_emb: np.ndarray, query_importance: np.ndarray,
                       shots: int, adaptive: bool
                       ) -> tuple[np.ndarray, np.ndarray, int]:
        """Select → augment → predict → cache-update for one query batch."""
        config = self.config
        if adaptive:
            selected = self.selector.select(
                candidate_emb, candidate_importance, query_emb,
                query_importance, pool_labels, shots)
        else:
            # Pool already holds exactly the random k-shot prompts.
            selected = np.arange(candidate_emb.shape[0])
        prompt_emb = candidate_emb[selected]
        prompt_labels = pool_labels[selected]
        if config.use_selection_layers:
            prompt_emb = prompt_emb * candidate_importance[selected, None]

        if config.use_augmenter and len(self.augmenter):
            cache_emb, cache_labels = self.augmenter.cached_prompts()
            prompt_emb = np.concatenate([prompt_emb, cache_emb], axis=0)
            prompt_labels = np.concatenate([prompt_labels, cache_labels])

        logits = self.model.task_logits(
            Tensor(prompt_emb), prompt_labels, Tensor(query_emb),
            episode.num_ways)
        preds, confs = self.model.predict(logits)

        inserted = 0
        if config.use_augmenter:
            self.augmenter.record_hits(query_emb, shots)
            # Once a query becomes a cached prompt it plays a prompt's role,
            # so store it importance-weighted like the selected prompts.
            stored = query_emb
            if config.use_selection_layers:
                stored = query_emb * query_importance[:, None]
            inserted = self.augmenter.update(stored, preds, confs)
        return preds, confs, inserted
