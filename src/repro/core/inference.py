"""Inference pipeline (Alg. 2): the three stages wired together.

Per evaluation run the pipeline receives one m-way episode — ``N``
candidates per class plus a stream of queries — and processes queries in
mini-batches, maintaining the Augmenter cache across batches exactly as
Alg. 2 maintains it across test steps:

1. **Generator** — sample + encode candidate and query data graphs (with
   reconstruction weights when enabled).
2. **Selector** — importance scores + kNN retrieval + voting pick ``k``
   prompts per class for the current query batch.
3. **Augmenter** — cache entries join the prompt set (``Ŝ' = Ŝ ∪ C``);
   after prediction, high-confidence queries are inserted and similarity
   hits bump LFU frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.base import Dataset
from ..eval.metrics import safe_accuracy
from ..nn import Tensor, no_grad
from .config import GraphPrompterConfig
from .episodes import Episode
from .model import GraphPrompterModel
from .prompt_augmenter import PromptAugmenter
from .prompt_generator import PromptGenerator
from .prompt_selector import PromptSelector

__all__ = ["EpisodeResult", "GraphPrompterPipeline"]


@dataclass
class EpisodeResult:
    """Predictions and bookkeeping of one evaluation run."""

    predictions: np.ndarray
    labels: np.ndarray
    confidences: np.ndarray
    num_cache_insertions: int

    @property
    def accuracy(self) -> float:
        return safe_accuracy(self.predictions, self.labels)

    @property
    def num_queries(self) -> int:
        return int(self.labels.size)


class GraphPrompterPipeline:
    """End-to-end in-context inference over one downstream dataset."""

    def __init__(self, model: GraphPrompterModel, dataset: Dataset,
                 rng: np.random.Generator | int | None = None):
        self.model = model
        self.dataset = dataset
        self.config: GraphPrompterConfig = model.config
        self.rng = np.random.default_rng(rng)
        self.generator = PromptGenerator(
            dataset.graph, model.config, rng=self.rng,
            deterministic=model.config.deterministic_sampling,
            salt=model.config.seed)
        self.selector = PromptSelector(model.config, rng=self.rng)
        self.augmenter = PromptAugmenter(model.config, rng=self.rng)
        #: Optional override of :meth:`encode_points` with the same
        #: ``(datapoints, arena=...) -> (emb, importance)`` contract.  The
        #: serving layer installs :meth:`~repro.serving.ShardRouter.
        #: encode_points` here so both query batches and candidate pools
        #: take the sharded/parallel path.
        self.point_encoder = None

    def run_episode(self, episode: Episode, shots: int = 3,
                    query_batch_size: int = 8,
                    reset_cache: bool = True) -> EpisodeResult:
        """Run Alg. 2 over one episode; returns per-query predictions.

        ``reset_cache=False`` keeps the Augmenter cache from a previous
        call — use when streaming one logical episode through several
        ``run_episode`` invocations.
        """
        self.model.eval()
        if reset_cache:
            self.augmenter.reset()

        with no_grad():
            candidate_emb, candidate_importance, pool_labels = (
                self.encode_candidate_pool(episode, shots))

            predictions: list[np.ndarray] = []
            confidences: list[np.ndarray] = []
            insertions = 0
            for start in range(0, episode.num_queries, query_batch_size):
                batch_queries = episode.queries[start:start + query_batch_size]
                query_emb, query_importance = self.encode_points(batch_queries)

                preds, confs, inserted = self.predict_batch(
                    candidate_emb, candidate_importance, pool_labels,
                    query_emb, query_importance, episode.num_ways, shots)
                predictions.append(preds)
                confidences.append(confs)
                insertions += inserted

        return EpisodeResult(
            predictions=np.concatenate(predictions),
            labels=episode.query_labels,
            confidences=np.concatenate(confidences),
            num_cache_insertions=insertions,
        )

    # ------------------------------------------------------------------
    # Public per-batch API — shared by the offline episode runner above and
    # the online serving path (repro.serving), which injects per-session
    # Augmenter caches.
    # ------------------------------------------------------------------
    def encode_points(self, datapoints: list, arena=None
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Sample + encode datapoints; returns ``(embeddings, importance)``.

        Runs the no-grad fused encoder path; ``arena`` optionally supplies
        reusable batch buffers (the serving loop passes its per-tick
        :class:`~repro.gnn.BatchArena`).
        """
        if self.point_encoder is not None:
            return self.point_encoder(datapoints, arena=arena)
        with no_grad():
            emb_t = self.model.encode_subgraphs(
                self.generator.subgraphs_for(datapoints), arena=arena)
            importance = self.model.importance(emb_t).data
        return emb_t.data, importance

    def select_candidate_pool(self, episode: Episode, shots: int
                              ) -> tuple[list, np.ndarray]:
        """The datapoints (and labels) the prediction step works against.

        The *full* candidate set under adaptive selection, or Prodigy's
        random k-shot choice when every selection stage is disabled.
        Note the Prodigy branch draws from the pipeline RNG — callers that
        need both the datapoints and their encodings (the serving layer's
        session open/revalidate path) must reuse one selection rather
        than calling twice.
        """
        config = self.config
        if config.use_knn or config.use_selection_layers:
            # GraphPrompter pays for encoding the full candidate pool —
            # the selector needs every embedding (Eqs. 5–8).
            return list(episode.candidates), episode.candidate_labels
        # Prodigy only ever encodes its random k-shot choice
        # (Sec. V-A3), so its per-query cost excludes the pool.
        selected = self.selector.select(
            np.zeros((len(episode.candidates), 0)),
            np.zeros(len(episode.candidates)),
            np.zeros((1, 0)), np.zeros(1),
            episode.candidate_labels, shots)
        return ([episode.candidates[i] for i in selected],
                episode.candidate_labels[selected])

    def encode_candidate_pool(self, episode: Episode, shots: int
                              ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Embeddings/importance/labels of the episode's prompt pool."""
        candidate_pool, pool_labels = self.select_candidate_pool(episode,
                                                                 shots)
        candidate_emb, candidate_importance = (
            self.encode_points(candidate_pool))
        return candidate_emb, candidate_importance, pool_labels

    def predict_batch(self, candidate_emb: np.ndarray,
                      candidate_importance: np.ndarray,
                      pool_labels: np.ndarray,
                      query_emb: np.ndarray, query_importance: np.ndarray,
                      num_ways: int, shots: int,
                      augmenter: PromptAugmenter | None = None
                      ) -> tuple[np.ndarray, np.ndarray, int]:
        """Select → augment → predict → cache-update for one query batch.

        ``augmenter`` overrides the pipeline-owned cache — the serving layer
        passes each session's private :class:`PromptAugmenter` here.

        The whole step is inference-only, so it runs under ``no_grad`` —
        the task-graph GNN takes its fused numpy path and no backward
        closures are allocated, whether the caller is the offline episode
        runner (already inside ``no_grad``) or the online server.
        """
        with no_grad():
            return self._predict_batch_impl(
                candidate_emb, candidate_importance, pool_labels, query_emb,
                query_importance, num_ways, shots, augmenter)

    def _predict_batch_impl(self, candidate_emb, candidate_importance,
                            pool_labels, query_emb, query_importance,
                            num_ways, shots, augmenter):
        config = self.config
        augmenter = augmenter if augmenter is not None else self.augmenter
        adaptive = config.use_knn or config.use_selection_layers
        if adaptive:
            selected = self.selector.select(
                candidate_emb, candidate_importance, query_emb,
                query_importance, pool_labels, shots)
        else:
            # Pool already holds exactly the random k-shot prompts.
            selected = np.arange(candidate_emb.shape[0])
        prompt_emb = candidate_emb[selected]
        prompt_labels = pool_labels[selected]
        if config.use_selection_layers:
            prompt_emb = prompt_emb * candidate_importance[selected, None]

        if config.use_augmenter and len(augmenter):
            cache_emb, cache_labels = augmenter.cached_prompts()
            prompt_emb = np.concatenate([prompt_emb, cache_emb], axis=0)
            prompt_labels = np.concatenate([prompt_labels, cache_labels])

        logits = self.model.task_logits(
            Tensor(prompt_emb), prompt_labels, Tensor(query_emb), num_ways)
        preds, confs = self.model.predict(logits)

        inserted = 0
        if config.use_augmenter:
            augmenter.record_hits(query_emb, shots)
            # Once a query becomes a cached prompt it plays a prompt's role,
            # so store it importance-weighted like the selected prompts.
            stored = query_emb
            if config.use_selection_layers:
                stored = query_emb * query_importance[:, None]
            inserted = augmenter.update(stored, preds, confs)
        return preds, confs, inserted
